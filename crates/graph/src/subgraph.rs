//! Induced subgraphs and vertex masks.
//!
//! Two forms of "removing vertices" appear in the paper:
//!
//! * `G[V \ B]` — the induced subgraph after deleting a blocker set, used in
//!   the problem statement and by the exact/baseline algorithms;
//! * a *mask*: keeping the graph intact and skipping blocked vertices during
//!   traversal, used by the efficient algorithms so no copies are made per
//!   greedy round.
//!
//! [`InducedSubgraph`] materialises the former while remembering the vertex
//! mapping back to the original graph; [`VertexMask`] is a small helper for
//! the latter.

use crate::{DiGraph, Result, VertexId};

/// A boolean vertex mask with set-like helpers.
///
/// Semantically this is the blocker set `B` (or any removed-vertex set):
/// `mask.contains(v)` means `v` is blocked/removed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VertexMask {
    bits: Vec<bool>,
    count: usize,
}

impl VertexMask {
    /// Creates an empty mask for graphs with `n` vertices.
    pub fn new(n: usize) -> Self {
        VertexMask {
            bits: vec![false; n],
            count: 0,
        }
    }

    /// Creates a mask from an iterator of vertices to include.
    pub fn from_vertices(n: usize, vertices: impl IntoIterator<Item = VertexId>) -> Self {
        let mut mask = Self::new(n);
        for v in vertices {
            mask.insert(v);
        }
        mask
    }

    /// Number of vertices the mask covers (the graph size `n`).
    pub fn capacity(&self) -> usize {
        self.bits.len()
    }

    /// Number of vertices currently in the mask.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Returns `true` if no vertex is masked.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Returns `true` if `v` is in the mask.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        self.bits.get(v.index()).copied().unwrap_or(false)
    }

    /// Inserts `v`; returns `true` if it was newly inserted.
    pub fn insert(&mut self, v: VertexId) -> bool {
        let slot = &mut self.bits[v.index()];
        if *slot {
            false
        } else {
            *slot = true;
            self.count += 1;
            true
        }
    }

    /// Removes `v`; returns `true` if it was present.
    pub fn remove(&mut self, v: VertexId) -> bool {
        let slot = &mut self.bits[v.index()];
        if *slot {
            *slot = false;
            self.count -= 1;
            true
        } else {
            false
        }
    }

    /// Clears the mask.
    pub fn clear(&mut self) {
        self.bits.iter_mut().for_each(|b| *b = false);
        self.count = 0;
    }

    /// Iterator over the masked vertices in increasing id order.
    pub fn iter(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.bits
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| VertexId::new(i))
    }

    /// Borrow the underlying boolean slice (indexed by vertex id).
    pub fn as_slice(&self) -> &[bool] {
        &self.bits
    }

    /// Collects the masked vertices into a vector.
    pub fn to_vec(&self) -> Vec<VertexId> {
        self.iter().collect()
    }
}

impl FromIterator<VertexId> for VertexMask {
    /// Builds a mask sized to the largest vertex id in the iterator.
    fn from_iter<T: IntoIterator<Item = VertexId>>(iter: T) -> Self {
        let vertices: Vec<VertexId> = iter.into_iter().collect();
        let n = vertices.iter().map(|v| v.index() + 1).max().unwrap_or(0);
        Self::from_vertices(n, vertices)
    }
}

/// The result of taking an induced subgraph: the new graph plus the mapping
/// between old and new vertex ids.
#[derive(Clone, Debug)]
pub struct InducedSubgraph {
    /// The induced subgraph with dense re-numbered vertices.
    pub graph: DiGraph,
    /// `original[new_id] = old_id` — maps subgraph vertices back to the
    /// original graph.
    pub original: Vec<VertexId>,
    /// `projected[old_id] = Some(new_id)` for kept vertices, `None` for
    /// removed ones.
    pub projected: Vec<Option<VertexId>>,
}

impl InducedSubgraph {
    /// Maps a vertex of the original graph into the subgraph, if kept.
    pub fn project(&self, old: VertexId) -> Option<VertexId> {
        self.projected.get(old.index()).copied().flatten()
    }

    /// Maps a subgraph vertex back to the original graph.
    pub fn lift(&self, new: VertexId) -> VertexId {
        self.original[new.index()]
    }
}

/// Returns the subgraph of `graph` induced by the vertices for which
/// `keep(v)` is `true` (i.e. `G[V']` of Table I).
pub fn induced_subgraph<F>(graph: &DiGraph, mut keep: F) -> Result<InducedSubgraph>
where
    F: FnMut(VertexId) -> bool,
{
    let n = graph.num_vertices();
    let mut projected: Vec<Option<VertexId>> = vec![None; n];
    let mut original: Vec<VertexId> = Vec::new();
    for v in graph.vertices() {
        if keep(v) {
            projected[v.index()] = Some(VertexId::new(original.len()));
            original.push(v);
        }
    }
    let mut edges = Vec::new();
    for &u in &original {
        let nu = projected[u.index()].expect("kept vertex has a projection");
        for (t, p) in graph.out_edges(u) {
            if let Some(nt) = projected[t.index()] {
                edges.push((nu, nt, p));
            }
        }
    }
    let graph = DiGraph::from_edges(original.len(), edges)?;
    Ok(InducedSubgraph {
        graph,
        original,
        projected,
    })
}

/// Returns `G[V \ removed]`: the induced subgraph after deleting the vertices
/// in `removed`, exactly the operation of the IMIN objective
/// `E(S, G[V \ B])`.
pub fn remove_vertices(graph: &DiGraph, removed: &VertexMask) -> Result<InducedSubgraph> {
    induced_subgraph(graph, |v| !removed.contains(v))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vid(i: usize) -> VertexId {
        VertexId::new(i)
    }

    fn diamond() -> DiGraph {
        DiGraph::from_edges(
            4,
            vec![
                (vid(0), vid(1), 0.5),
                (vid(0), vid(2), 0.25),
                (vid(1), vid(3), 1.0),
                (vid(2), vid(3), 0.75),
            ],
        )
        .unwrap()
    }

    #[test]
    fn mask_basic_operations() {
        let mut m = VertexMask::new(5);
        assert!(m.is_empty());
        assert!(m.insert(vid(2)));
        assert!(!m.insert(vid(2)));
        assert!(m.contains(vid(2)));
        assert_eq!(m.len(), 1);
        assert!(m.remove(vid(2)));
        assert!(!m.remove(vid(2)));
        assert!(m.is_empty());
        m.insert(vid(1));
        m.insert(vid(4));
        assert_eq!(m.to_vec(), vec![vid(1), vid(4)]);
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.capacity(), 5);
    }

    #[test]
    fn mask_out_of_range_contains_is_false() {
        let m = VertexMask::new(3);
        assert!(!m.contains(vid(10)));
    }

    #[test]
    fn mask_from_iterators() {
        let m = VertexMask::from_vertices(6, vec![vid(0), vid(5)]);
        assert_eq!(m.len(), 2);
        let m2: VertexMask = vec![vid(3), vid(1)].into_iter().collect();
        assert_eq!(m2.capacity(), 4);
        assert!(m2.contains(vid(1)) && m2.contains(vid(3)));
        assert_eq!(m2.as_slice(), &[false, true, false, true]);
    }

    #[test]
    fn induced_subgraph_keeps_requested_vertices_and_edges() {
        let g = diamond();
        let sub = induced_subgraph(&g, |v| v != vid(2)).unwrap();
        assert_eq!(sub.graph.num_vertices(), 3);
        assert_eq!(sub.graph.num_edges(), 2); // 0->1, 1->3 survive
        assert_eq!(sub.lift(vid(0)), vid(0));
        assert_eq!(sub.lift(vid(2)), vid(3));
        assert_eq!(sub.project(vid(3)), Some(vid(2)));
        assert_eq!(sub.project(vid(2)), None);
        // Probabilities carried over.
        let p = sub
            .graph
            .edge_probability(sub.project(vid(1)).unwrap(), sub.project(vid(3)).unwrap())
            .unwrap();
        assert_eq!(p, 1.0);
        assert!(sub.graph.validate().is_ok());
    }

    #[test]
    fn remove_vertices_matches_objective_semantics() {
        let g = diamond();
        let blockers = VertexMask::from_vertices(4, vec![vid(1), vid(2)]);
        let sub = remove_vertices(&g, &blockers).unwrap();
        assert_eq!(sub.graph.num_vertices(), 2);
        assert_eq!(sub.graph.num_edges(), 0);
    }

    #[test]
    fn empty_and_full_subgraphs() {
        let g = diamond();
        let none = induced_subgraph(&g, |_| false).unwrap();
        assert_eq!(none.graph.num_vertices(), 0);
        assert_eq!(none.graph.num_edges(), 0);
        let all = induced_subgraph(&g, |_| true).unwrap();
        assert_eq!(all.graph.num_vertices(), 4);
        assert_eq!(all.graph.num_edges(), 4);
        for v in g.vertices() {
            assert_eq!(all.project(v), Some(v));
        }
    }
}
