//! Per-graph summary statistics (Table IV of the paper).

use crate::{DiGraph, VertexId};
use std::fmt;

/// Summary statistics of a graph, matching the columns of Table IV:
/// `n`, `m`, average degree, maximum degree, plus a few extras that the
/// dataset stand-ins use for validation (isolated vertices, edge probability
/// range).
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of directed edges.
    pub num_edges: usize,
    /// Average total degree `2m / n`.
    pub average_degree: f64,
    /// Maximum total degree.
    pub max_degree: usize,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Maximum in-degree.
    pub max_in_degree: usize,
    /// Number of vertices with no in- or out-edges.
    pub isolated_vertices: usize,
    /// Smallest edge probability (1.0 for an edgeless graph).
    pub min_probability: f64,
    /// Largest edge probability (0.0 for an edgeless graph).
    pub max_probability: f64,
}

impl GraphStats {
    /// Computes statistics for `graph`.
    pub fn compute(graph: &DiGraph) -> Self {
        let n = graph.num_vertices();
        let mut max_degree = 0usize;
        let mut max_out = 0usize;
        let mut max_in = 0usize;
        let mut isolated = 0usize;
        for v in graph.vertices() {
            let dout = graph.out_degree(v);
            let din = graph.in_degree(v);
            max_out = max_out.max(dout);
            max_in = max_in.max(din);
            max_degree = max_degree.max(dout + din);
            if dout == 0 && din == 0 {
                isolated += 1;
            }
        }
        let mut min_p = f64::INFINITY;
        let mut max_p = f64::NEG_INFINITY;
        for e in graph.edges() {
            min_p = min_p.min(e.probability);
            max_p = max_p.max(e.probability);
        }
        if graph.num_edges() == 0 {
            min_p = 1.0;
            max_p = 0.0;
        }
        GraphStats {
            num_vertices: n,
            num_edges: graph.num_edges(),
            average_degree: graph.average_degree(),
            max_degree,
            max_out_degree: max_out,
            max_in_degree: max_in,
            isolated_vertices: isolated,
            min_probability: min_p,
            max_probability: max_p,
        }
    }
}

impl fmt::Display for GraphStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} m={} d_avg={:.1} d_max={} (out {}, in {}) isolated={} p∈[{:.3}, {:.3}]",
            self.num_vertices,
            self.num_edges,
            self.average_degree,
            self.max_degree,
            self.max_out_degree,
            self.max_in_degree,
            self.isolated_vertices,
            self.min_probability,
            self.max_probability
        )
    }
}

/// Returns the out-degree distribution as a histogram:
/// `hist[d]` = number of vertices with out-degree `d`.
pub fn out_degree_histogram(graph: &DiGraph) -> Vec<usize> {
    let mut hist = vec![0usize; 1];
    for v in graph.vertices() {
        let d = graph.out_degree(v);
        if d >= hist.len() {
            hist.resize(d + 1, 0);
        }
        hist[d] += 1;
    }
    hist
}

/// Returns the vertices sorted by decreasing out-degree (ties broken by id),
/// which is exactly the ranking used by the OutDegree heuristic of §VI-A.
pub fn vertices_by_out_degree(graph: &DiGraph) -> Vec<VertexId> {
    let mut vs: Vec<VertexId> = graph.vertices().collect();
    vs.sort_by_key(|&v| (std::cmp::Reverse(graph.out_degree(v)), v.raw()));
    vs
}

/// Returns the vertices sorted by decreasing total degree (ties by id).
pub fn vertices_by_degree(graph: &DiGraph) -> Vec<VertexId> {
    let mut vs: Vec<VertexId> = graph.vertices().collect();
    vs.sort_by_key(|&v| (std::cmp::Reverse(graph.degree(v)), v.raw()));
    vs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vid(i: usize) -> VertexId {
        VertexId::new(i)
    }

    fn star() -> DiGraph {
        // 0 -> 1..4, plus isolated vertex 5.
        DiGraph::from_edges(6, (1..5).map(|i| (vid(0), vid(i), 0.5)).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn stats_of_star() {
        let s = GraphStats::compute(&star());
        assert_eq!(s.num_vertices, 6);
        assert_eq!(s.num_edges, 4);
        assert_eq!(s.max_degree, 4);
        assert_eq!(s.max_out_degree, 4);
        assert_eq!(s.max_in_degree, 1);
        assert_eq!(s.isolated_vertices, 1);
        assert_eq!(s.min_probability, 0.5);
        assert_eq!(s.max_probability, 0.5);
        assert!((s.average_degree - 8.0 / 6.0).abs() < 1e-12);
        assert!(s.to_string().contains("n=6"));
    }

    #[test]
    fn stats_of_empty_graph() {
        let s = GraphStats::compute(&DiGraph::empty(3));
        assert_eq!(s.num_edges, 0);
        assert_eq!(s.isolated_vertices, 3);
        assert_eq!(s.min_probability, 1.0);
        assert_eq!(s.max_probability, 0.0);
    }

    #[test]
    fn degree_histogram() {
        let hist = out_degree_histogram(&star());
        assert_eq!(hist[0], 5); // leaves and the isolated vertex
        assert_eq!(hist[4], 1); // the hub
        assert_eq!(hist.iter().sum::<usize>(), 6);
    }

    #[test]
    fn degree_orderings() {
        let g = star();
        let by_out = vertices_by_out_degree(&g);
        assert_eq!(by_out[0], vid(0));
        let by_deg = vertices_by_degree(&g);
        assert_eq!(by_deg[0], vid(0));
        // Ties are broken by increasing id.
        assert_eq!(&by_out[1..], &[vid(1), vid(2), vid(3), vid(4), vid(5)]);
    }
}
