//! Breadth-first / depth-first traversal and reachability with blocked-vertex
//! masks.
//!
//! Reachability from the seed in a *sampled* (live-edge) graph is the
//! fundamental primitive of the paper: the expected spread equals the
//! expected number of vertices reachable from the seed (Lemma 1), and
//! blocking a vertex removes it — together with everything it dominates —
//! from the reachable set (Definition 2, Theorem 6).
//!
//! All routines take an optional `blocked` mask so callers can evaluate
//! `σ(s, g[V \ B])` without materialising an induced subgraph.

use crate::{DiGraph, VertexId};

/// A reusable BFS/DFS workspace.
///
/// Traversals during Monte-Carlo simulation and sampling run millions of
/// times; the workspace keeps the `visited` stamps and the frontier queue
/// allocated across calls (the "workhorse collection" pattern).
#[derive(Clone, Debug)]
pub struct TraversalWorkspace {
    /// Visit stamps: `visited[v] == stamp` means v was reached in the
    /// current traversal. Using stamps avoids clearing the array each run.
    visited: Vec<u32>,
    stamp: u32,
    queue: Vec<u32>,
}

impl TraversalWorkspace {
    /// Creates a workspace for graphs with up to `n` vertices.
    pub fn new(n: usize) -> Self {
        TraversalWorkspace {
            visited: vec![0; n],
            stamp: 0,
            queue: Vec::with_capacity(n.min(1024)),
        }
    }

    /// Grows the workspace if the graph has more vertices than before.
    pub fn resize(&mut self, n: usize) {
        if self.visited.len() < n {
            self.visited.resize(n, 0);
        }
    }

    fn next_stamp(&mut self) -> u32 {
        if self.stamp == u32::MAX {
            // Extremely unlikely, but reset cleanly rather than wrap into
            // stale stamps.
            self.visited.iter_mut().for_each(|s| *s = 0);
            self.stamp = 0;
        }
        self.stamp += 1;
        self.stamp
    }

    /// Returns `true` if `v` was visited by the most recent traversal run
    /// through this workspace.
    pub fn was_visited(&self, v: VertexId) -> bool {
        self.visited[v.index()] == self.stamp
    }

    /// Runs a BFS over the out-edges of `graph` from `sources`, skipping
    /// vertices for which `blocked` returns `true`, and returns the number of
    /// visited vertices (the sources themselves included when not blocked).
    ///
    /// The visited set is queryable afterwards via
    /// [`TraversalWorkspace::was_visited`].
    pub fn bfs_reachable_count<F>(
        &mut self,
        graph: &DiGraph,
        sources: &[VertexId],
        mut blocked: F,
    ) -> usize
    where
        F: FnMut(VertexId) -> bool,
    {
        self.resize(graph.num_vertices());
        let stamp = self.next_stamp();
        self.queue.clear();
        let mut count = 0usize;
        for &s in sources {
            if s.index() >= graph.num_vertices() {
                continue;
            }
            if blocked(s) || self.visited[s.index()] == stamp {
                continue;
            }
            self.visited[s.index()] = stamp;
            self.queue.push(s.raw());
            count += 1;
        }
        let mut head = 0usize;
        while head < self.queue.len() {
            let u = VertexId::from_raw(self.queue[head]);
            head += 1;
            for &t in graph.out_neighbors(u) {
                let ti = t as usize;
                if self.visited[ti] == stamp {
                    continue;
                }
                let tv = VertexId::from_raw(t);
                if blocked(tv) {
                    continue;
                }
                self.visited[ti] = stamp;
                self.queue.push(t);
                count += 1;
            }
        }
        count
    }

    /// BFS that collects the visited vertices into `out` (cleared first) in
    /// visit order. Returns the number of visited vertices.
    pub fn bfs_collect<F>(
        &mut self,
        graph: &DiGraph,
        sources: &[VertexId],
        blocked: F,
        out: &mut Vec<VertexId>,
    ) -> usize
    where
        F: FnMut(VertexId) -> bool,
    {
        let count = self.bfs_reachable_count(graph, sources, blocked);
        out.clear();
        out.extend(self.queue.iter().map(|&v| VertexId::from_raw(v)));
        count
    }
}

/// Convenience wrapper: number of vertices reachable from `sources` over
/// out-edges (no blocking). Equals `σ(s, G)` of Table II when `G` is a
/// deterministic (sampled) graph.
pub fn reachable_count(graph: &DiGraph, sources: &[VertexId]) -> usize {
    let mut ws = TraversalWorkspace::new(graph.num_vertices());
    ws.bfs_reachable_count(graph, sources, |_| false)
}

/// Number of vertices reachable from `sources` when every vertex with
/// `blocked[v] == true` is removed from the graph (Definition 2).
pub fn reachable_count_blocked(graph: &DiGraph, sources: &[VertexId], blocked: &[bool]) -> usize {
    let mut ws = TraversalWorkspace::new(graph.num_vertices());
    ws.bfs_reachable_count(graph, sources, |v| blocked[v.index()])
}

/// Returns the set of vertices reachable from `sources` as a boolean mask.
pub fn reachable_mask(graph: &DiGraph, sources: &[VertexId]) -> Vec<bool> {
    let mut ws = TraversalWorkspace::new(graph.num_vertices());
    let mut verts = Vec::new();
    ws.bfs_collect(graph, sources, |_| false, &mut verts);
    let mut mask = vec![false; graph.num_vertices()];
    for v in verts {
        mask[v.index()] = true;
    }
    mask
}

/// Depth-first pre-order from `source` over out-edges, skipping blocked
/// vertices. Returns the visit order (source first).
///
/// The Lengauer–Tarjan dominator algorithm requires a DFS numbering of the
/// sampled graph rooted at the seed (§V-B3); this function provides it.
pub fn dfs_preorder<F>(graph: &DiGraph, source: VertexId, mut blocked: F) -> Vec<VertexId>
where
    F: FnMut(VertexId) -> bool,
{
    let n = graph.num_vertices();
    let mut order = Vec::new();
    if source.index() >= n || blocked(source) {
        return order;
    }
    let mut visited = vec![false; n];
    // Iterative DFS with an explicit stack of (vertex, next-edge-index).
    let mut stack: Vec<(VertexId, usize)> = Vec::new();
    visited[source.index()] = true;
    order.push(source);
    stack.push((source, 0));
    while let Some(&mut (u, ref mut next)) = stack.last_mut() {
        let targets = graph.out_neighbors(u);
        if *next >= targets.len() {
            stack.pop();
            continue;
        }
        let t = VertexId::from_raw(targets[*next]);
        *next += 1;
        if !visited[t.index()] && !blocked(t) {
            visited[t.index()] = true;
            order.push(t);
            stack.push((t, 0));
        }
    }
    order
}

/// Topological order of a DAG (Kahn's algorithm). Returns `None` if the
/// graph contains a cycle.
///
/// Used by the exact spread computation on DAG-shaped extracts and by tests.
pub fn topological_order(graph: &DiGraph) -> Option<Vec<VertexId>> {
    let n = graph.num_vertices();
    let mut indeg: Vec<usize> = (0..n).map(|v| graph.in_degree(VertexId::new(v))).collect();
    let mut queue: Vec<VertexId> = (0..n)
        .filter(|&v| indeg[v] == 0)
        .map(VertexId::new)
        .collect();
    let mut order = Vec::with_capacity(n);
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        order.push(u);
        for &t in graph.out_neighbors(u) {
            let ti = t as usize;
            indeg[ti] -= 1;
            if indeg[ti] == 0 {
                queue.push(VertexId::from_raw(t));
            }
        }
    }
    if order.len() == n {
        Some(order)
    } else {
        None
    }
}

/// Returns `true` if every vertex of the graph is reachable from `source`.
pub fn is_connected_from(graph: &DiGraph, source: VertexId) -> bool {
    reachable_count(graph, &[source]) == graph.num_vertices()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DiGraph;

    fn vid(i: usize) -> VertexId {
        VertexId::new(i)
    }

    /// 0 -> 1 -> 2 -> 3 and 0 -> 4, plus an unreachable 5 -> 6 component.
    fn sample() -> DiGraph {
        DiGraph::from_edges(
            7,
            vec![
                (vid(0), vid(1), 1.0),
                (vid(1), vid(2), 1.0),
                (vid(2), vid(3), 1.0),
                (vid(0), vid(4), 1.0),
                (vid(5), vid(6), 1.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn reachability_counts() {
        let g = sample();
        assert_eq!(reachable_count(&g, &[vid(0)]), 5);
        assert_eq!(reachable_count(&g, &[vid(5)]), 2);
        assert_eq!(reachable_count(&g, &[vid(3)]), 1);
        assert_eq!(reachable_count(&g, &[vid(0), vid(5)]), 7);
        assert_eq!(reachable_count(&g, &[]), 0);
    }

    #[test]
    fn blocking_cuts_reachability() {
        let g = sample();
        let mut blocked = vec![false; 7];
        blocked[1] = true;
        // Blocking v1 removes v1, v2, v3 from the reachable set of v0.
        assert_eq!(reachable_count_blocked(&g, &[vid(0)], &blocked), 2);
        // Blocking the source itself yields zero.
        let mut blocked_src = vec![false; 7];
        blocked_src[0] = true;
        assert_eq!(reachable_count_blocked(&g, &[vid(0)], &blocked_src), 0);
    }

    #[test]
    fn reachable_mask_matches_count() {
        let g = sample();
        let mask = reachable_mask(&g, &[vid(0)]);
        assert_eq!(mask.iter().filter(|&&b| b).count(), 5);
        assert!(mask[0] && mask[1] && mask[4]);
        assert!(!mask[5] && !mask[6]);
    }

    #[test]
    fn workspace_is_reusable_across_runs() {
        let g = sample();
        let mut ws = TraversalWorkspace::new(g.num_vertices());
        assert_eq!(ws.bfs_reachable_count(&g, &[vid(0)], |_| false), 5);
        assert_eq!(ws.bfs_reachable_count(&g, &[vid(5)], |_| false), 2);
        assert!(ws.was_visited(vid(6)));
        assert!(!ws.was_visited(vid(0)));
        // Third run with blocking still correct.
        assert_eq!(ws.bfs_reachable_count(&g, &[vid(0)], |v| v == vid(1)), 2);
    }

    #[test]
    fn dfs_preorder_visits_reachable_once_source_first() {
        let g = sample();
        let order = dfs_preorder(&g, vid(0), |_| false);
        assert_eq!(order.len(), 5);
        assert_eq!(order[0], vid(0));
        let mut sorted: Vec<usize> = order.iter().map(|v| v.index()).collect();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn dfs_preorder_respects_blocking_and_blocked_source() {
        let g = sample();
        let order = dfs_preorder(&g, vid(0), |v| v == vid(1));
        let ids: Vec<usize> = order.iter().map(|v| v.index()).collect();
        assert_eq!(ids, vec![0, 4]);
        assert!(dfs_preorder(&g, vid(0), |v| v == vid(0)).is_empty());
    }

    #[test]
    fn topological_order_on_dag_and_cycle() {
        let g = sample();
        let order = topological_order(&g).expect("sample graph is a DAG");
        let pos: Vec<usize> = {
            let mut pos = vec![0; 7];
            for (i, v) in order.iter().enumerate() {
                pos[v.index()] = i;
            }
            pos
        };
        for e in g.edges() {
            assert!(pos[e.source.index()] < pos[e.target.index()]);
        }

        let cyclic =
            DiGraph::from_edges(2, vec![(vid(0), vid(1), 1.0), (vid(1), vid(0), 1.0)]).unwrap();
        assert!(topological_order(&cyclic).is_none());
    }

    #[test]
    fn connectivity_check() {
        let g = sample();
        assert!(!is_connected_from(&g, vid(0)));
        let path =
            DiGraph::from_edges(3, vec![(vid(0), vid(1), 1.0), (vid(1), vid(2), 1.0)]).unwrap();
        assert!(is_connected_from(&path, vid(0)));
        assert!(!is_connected_from(&path, vid(2)));
    }

    #[test]
    fn bfs_collect_returns_visit_order() {
        let g = sample();
        let mut ws = TraversalWorkspace::new(g.num_vertices());
        let mut out = Vec::new();
        let count = ws.bfs_collect(&g, &[vid(0)], |_| false, &mut out);
        assert_eq!(count, out.len());
        assert_eq!(out[0], vid(0));
        // BFS layer order: 0, then {1,4}, then 2, then 3.
        assert_eq!(out.last(), Some(&vid(3)));
    }

    #[test]
    fn sources_outside_graph_are_ignored() {
        let g = sample();
        let mut ws = TraversalWorkspace::new(g.num_vertices());
        assert_eq!(
            ws.bfs_reachable_count(&g, &[VertexId::new(100)], |_| false),
            0
        );
    }
}
