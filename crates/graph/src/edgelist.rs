//! SNAP-style edge-list reading and writing.
//!
//! The paper's eight datasets are distributed as whitespace-separated edge
//! lists with `#` comment lines (the SNAP format). This module parses that
//! format, optionally with a third column carrying the propagation
//! probability, and can write graphs back out in the same shape so the
//! dataset stand-ins can be exported and inspected.
//!
//! Vertex ids in the input may be sparse (SNAP files frequently skip ids);
//! the loader compacts them into dense `0..n` ids and returns the mapping.

use crate::builder::SelfLoopPolicy;
use crate::{DiGraph, GraphBuilder, GraphError, Result, VertexId};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Options controlling edge-list parsing.
#[derive(Clone, Debug)]
pub struct EdgeListOptions {
    /// Treat every line `u v [p]` as two directed edges `u->v` and `v->u`
    /// (for the undirected datasets Facebook, DBLP and Youtube, §VI-A).
    pub undirected: bool,
    /// Probability assigned to edges without an explicit third column.
    pub default_probability: f64,
    /// Self-loop handling (SNAP data occasionally contains them).
    pub self_loops: SelfLoopPolicy,
    /// When `true`, original (possibly sparse) vertex ids are compacted into
    /// dense ids in first-seen order; when `false`, ids are taken literally
    /// and the vertex count is `max_id + 1`.
    pub compact_ids: bool,
}

impl Default for EdgeListOptions {
    fn default() -> Self {
        EdgeListOptions {
            undirected: false,
            default_probability: 1.0,
            self_loops: SelfLoopPolicy::Drop,
            compact_ids: true,
        }
    }
}

/// The result of loading an edge list: the graph plus the mapping from the
/// original file ids to dense [`VertexId`]s.
#[derive(Clone, Debug)]
pub struct LoadedEdgeList {
    /// The parsed graph.
    pub graph: DiGraph,
    /// `original_ids[dense] = id as it appeared in the file`.
    pub original_ids: Vec<u64>,
}

impl LoadedEdgeList {
    /// Looks up the dense id of an original file id (linear scan; intended
    /// for tests and small lookups).
    pub fn dense_id(&self, original: u64) -> Option<VertexId> {
        self.original_ids
            .iter()
            .position(|&o| o == original)
            .map(VertexId::new)
    }
}

/// Parses an edge list from any reader.
///
/// Each non-comment line must contain `source target [probability]`,
/// whitespace separated. Lines starting with `#` or `%` and blank lines are
/// ignored.
///
/// # Errors
/// Returns a [`GraphError::ParseError`] describing the offending line, or an
/// I/O error from the underlying reader.
pub fn read_edge_list<R: Read>(reader: R, options: &EdgeListOptions) -> Result<LoadedEdgeList> {
    let buf = BufReader::new(reader);
    let mut id_map: HashMap<u64, u32> = HashMap::new();
    let mut original_ids: Vec<u64> = Vec::new();
    let mut builder = GraphBuilder::new(0)
        .grow_to_fit(true)
        .self_loop_policy(options.self_loops);

    let mut intern = |raw: u64, original_ids: &mut Vec<u64>| -> VertexId {
        if options.compact_ids {
            let next = id_map.len() as u32;
            let dense = *id_map.entry(raw).or_insert_with(|| {
                original_ids.push(raw);
                next
            });
            VertexId::from_raw(dense)
        } else {
            VertexId::new(raw as usize)
        }
    };

    for (lineno, line) in buf.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let parse_id = |tok: Option<&str>, what: &str| -> Result<u64> {
            let tok = tok.ok_or_else(|| GraphError::ParseError {
                line: lineno + 1,
                message: format!("missing {what} vertex id"),
            })?;
            tok.parse::<u64>().map_err(|_| GraphError::ParseError {
                line: lineno + 1,
                message: format!("invalid {what} vertex id `{tok}`"),
            })
        };
        let src = parse_id(parts.next(), "source")?;
        let dst = parse_id(parts.next(), "target")?;
        let prob = match parts.next() {
            Some(tok) => tok.parse::<f64>().map_err(|_| GraphError::ParseError {
                line: lineno + 1,
                message: format!("invalid probability `{tok}`"),
            })?,
            None => options.default_probability,
        };
        if parts.next().is_some() {
            return Err(GraphError::ParseError {
                line: lineno + 1,
                message: "too many columns (expected `source target [probability]`)".into(),
            });
        }
        let u = intern(src, &mut original_ids);
        let v = intern(dst, &mut original_ids);
        if options.undirected {
            builder.add_undirected_edge(u, v, prob)?;
        } else {
            builder.add_edge(u, v, prob)?;
        }
    }

    if !options.compact_ids {
        // Identity mapping over the literal id space.
        original_ids = (0..builder.num_vertices() as u64).collect();
    }
    Ok(LoadedEdgeList {
        graph: builder.build(),
        original_ids,
    })
}

/// Parses an edge list held in a string. Convenience wrapper over
/// [`read_edge_list`] used heavily in tests and documentation examples.
pub fn parse_edge_list(text: &str, options: &EdgeListOptions) -> Result<LoadedEdgeList> {
    read_edge_list(text.as_bytes(), options)
}

/// Loads an edge list from a file path.
pub fn load_edge_list(path: impl AsRef<Path>, options: &EdgeListOptions) -> Result<LoadedEdgeList> {
    let file = std::fs::File::open(path)?;
    read_edge_list(file, options)
}

/// Writes a graph as a `source target probability` edge list.
pub fn write_edge_list<W: Write>(graph: &DiGraph, mut writer: W) -> Result<()> {
    writeln!(
        writer,
        "# vertices {} edges {}",
        graph.num_vertices(),
        graph.num_edges()
    )?;
    for e in graph.edges() {
        writeln!(writer, "{}\t{}\t{}", e.source, e.target, e.probability)?;
    }
    Ok(())
}

/// Writes a graph to a file path in edge-list format.
pub fn save_edge_list(graph: &DiGraph, path: impl AsRef<Path>) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_edge_list(graph, std::io::BufWriter::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_snap_format() {
        let text = "# comment line\n% another comment\n\n0 1\n1 2\n2 0\n";
        let loaded = parse_edge_list(text, &EdgeListOptions::default()).unwrap();
        assert_eq!(loaded.graph.num_vertices(), 3);
        assert_eq!(loaded.graph.num_edges(), 3);
        assert_eq!(
            loaded
                .graph
                .edge_probability(VertexId::new(0), VertexId::new(1)),
            Some(1.0)
        );
    }

    #[test]
    fn parses_probability_column_and_tabs() {
        let text = "0\t1\t0.25\n1\t2\t0.5\n";
        let loaded = parse_edge_list(text, &EdgeListOptions::default()).unwrap();
        assert_eq!(
            loaded
                .graph
                .edge_probability(VertexId::new(0), VertexId::new(1)),
            Some(0.25)
        );
    }

    #[test]
    fn compacts_sparse_ids_and_records_mapping() {
        let text = "100 200\n200 50\n";
        let loaded = parse_edge_list(text, &EdgeListOptions::default()).unwrap();
        assert_eq!(loaded.graph.num_vertices(), 3);
        assert_eq!(loaded.original_ids, vec![100, 200, 50]);
        assert_eq!(loaded.dense_id(200), Some(VertexId::new(1)));
        assert_eq!(loaded.dense_id(999), None);
    }

    #[test]
    fn literal_ids_when_compacting_disabled() {
        let text = "0 3\n";
        let opts = EdgeListOptions {
            compact_ids: false,
            ..Default::default()
        };
        let loaded = parse_edge_list(text, &opts).unwrap();
        assert_eq!(loaded.graph.num_vertices(), 4);
        assert_eq!(loaded.original_ids.len(), 4);
    }

    #[test]
    fn undirected_mode_doubles_edges() {
        let text = "0 1\n1 2\n";
        let opts = EdgeListOptions {
            undirected: true,
            ..Default::default()
        };
        let loaded = parse_edge_list(text, &opts).unwrap();
        assert_eq!(loaded.graph.num_edges(), 4);
        assert!(loaded.graph.has_edge(VertexId::new(1), VertexId::new(0)));
    }

    #[test]
    fn default_probability_is_applied() {
        let opts = EdgeListOptions {
            default_probability: 0.01,
            ..Default::default()
        };
        let loaded = parse_edge_list("0 1\n", &opts).unwrap();
        assert_eq!(
            loaded
                .graph
                .edge_probability(VertexId::new(0), VertexId::new(1)),
            Some(0.01)
        );
    }

    #[test]
    fn self_loops_are_dropped_by_default() {
        let loaded = parse_edge_list("0 0\n0 1\n", &EdgeListOptions::default()).unwrap();
        assert_eq!(loaded.graph.num_edges(), 1);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = parse_edge_list("0 1\nx 2\n", &EdgeListOptions::default()).unwrap_err();
        match err {
            GraphError::ParseError { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("source"));
            }
            other => panic!("unexpected error {other:?}"),
        }
        let err = parse_edge_list("0\n", &EdgeListOptions::default()).unwrap_err();
        assert!(matches!(err, GraphError::ParseError { line: 1, .. }));
        let err = parse_edge_list("0 1 0.5 extra\n", &EdgeListOptions::default()).unwrap_err();
        assert!(matches!(err, GraphError::ParseError { line: 1, .. }));
        let err = parse_edge_list("0 1 notaprob\n", &EdgeListOptions::default()).unwrap_err();
        assert!(matches!(err, GraphError::ParseError { line: 1, .. }));
    }

    #[test]
    fn roundtrip_write_then_read() {
        let g = DiGraph::from_edges(
            3,
            vec![
                (VertexId::new(0), VertexId::new(1), 0.5),
                (VertexId::new(1), VertexId::new(2), 0.125),
            ],
        )
        .unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let loaded = parse_edge_list(&text, &EdgeListOptions::default()).unwrap();
        assert_eq!(loaded.graph.num_vertices(), 3);
        assert_eq!(loaded.graph.num_edges(), 2);
        assert_eq!(
            loaded
                .graph
                .edge_probability(VertexId::new(1), VertexId::new(2)),
            Some(0.125)
        );
    }

    #[test]
    fn file_roundtrip() {
        let g = DiGraph::from_edges(2, vec![(VertexId::new(0), VertexId::new(1), 0.75)]).unwrap();
        let dir = std::env::temp_dir().join("imin-graph-edgelist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.txt");
        save_edge_list(&g, &path).unwrap();
        let loaded = load_edge_list(&path, &EdgeListOptions::default()).unwrap();
        assert_eq!(loaded.graph.num_edges(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err =
            load_edge_list("/nonexistent/path/file.txt", &EdgeListOptions::default()).unwrap_err();
        assert!(matches!(err, GraphError::Io(_)));
    }
}
