//! Error types for graph construction and I/O.

use std::fmt;
use std::io;

/// Errors produced by graph construction, probability assignment and
/// edge-list I/O.
#[derive(Debug)]
pub enum GraphError {
    /// A vertex id referenced an index outside `0..n`.
    VertexOutOfRange {
        /// The offending vertex index.
        vertex: usize,
        /// The number of vertices in the graph being built/queried.
        num_vertices: usize,
    },
    /// A propagation probability was outside the closed interval `[0, 1]`
    /// or was not a finite number.
    InvalidProbability {
        /// The offending probability value.
        probability: f64,
    },
    /// A self loop `(u, u)` was supplied to a builder configured to reject
    /// them.
    SelfLoop {
        /// The vertex with the self loop.
        vertex: usize,
    },
    /// The graph would exceed the supported number of vertices (`u32::MAX - 1`).
    TooManyVertices {
        /// The requested number of vertices.
        requested: usize,
    },
    /// An edge-list line could not be parsed.
    ParseError {
        /// 1-based line number in the input.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// An underlying I/O error while reading or writing an edge list or a
    /// binary graph section.
    Io(io::Error),
    /// A binary graph section (see [`crate::binfmt`]) failed structural
    /// validation during deserialisation.
    CorruptBinary {
        /// Human-readable description of the inconsistency.
        message: String,
    },
    /// A generator was asked for an impossible configuration
    /// (e.g. more edges than the complete graph can hold).
    InvalidGeneratorArgument {
        /// Human-readable description of the problem.
        message: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "vertex {vertex} is out of range for a graph with {num_vertices} vertices"
            ),
            GraphError::InvalidProbability { probability } => write!(
                f,
                "propagation probability {probability} is not a finite value in [0, 1]"
            ),
            GraphError::SelfLoop { vertex } => {
                write!(f, "self loop on vertex {vertex} is not allowed")
            }
            GraphError::TooManyVertices { requested } => write!(
                f,
                "requested {requested} vertices, which exceeds the supported maximum"
            ),
            GraphError::ParseError { line, message } => {
                write!(f, "edge-list parse error on line {line}: {message}")
            }
            GraphError::Io(err) => write!(f, "I/O error: {err}"),
            GraphError::CorruptBinary { message } => {
                write!(f, "corrupt binary graph section: {message}")
            }
            GraphError::InvalidGeneratorArgument { message } => {
                write!(f, "invalid generator argument: {message}")
            }
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<io::Error> for GraphError {
    fn from(err: io::Error) -> Self {
        GraphError::Io(err)
    }
}

/// Validates that a probability is finite and within `[0, 1]`.
pub(crate) fn validate_probability(p: f64) -> Result<(), GraphError> {
    if p.is_finite() && (0.0..=1.0).contains(&p) {
        Ok(())
    } else {
        Err(GraphError::InvalidProbability { probability: p })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probability_validation() {
        assert!(validate_probability(0.0).is_ok());
        assert!(validate_probability(1.0).is_ok());
        assert!(validate_probability(0.5).is_ok());
        assert!(validate_probability(-0.1).is_err());
        assert!(validate_probability(1.1).is_err());
        assert!(validate_probability(f64::NAN).is_err());
        assert!(validate_probability(f64::INFINITY).is_err());
    }

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::VertexOutOfRange {
            vertex: 9,
            num_vertices: 5,
        };
        assert!(e.to_string().contains("out of range"));
        let e = GraphError::InvalidProbability { probability: 2.0 };
        assert!(e.to_string().contains("probability"));
        let e = GraphError::SelfLoop { vertex: 3 };
        assert!(e.to_string().contains("self loop"));
        let e = GraphError::ParseError {
            line: 12,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("line 12"));
        let e = GraphError::InvalidGeneratorArgument {
            message: "too many edges".into(),
        };
        assert!(e.to_string().contains("too many edges"));
    }

    #[test]
    fn io_error_converts() {
        let io_err = io::Error::new(io::ErrorKind::NotFound, "missing");
        let e: GraphError = io_err.into();
        assert!(matches!(e, GraphError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
