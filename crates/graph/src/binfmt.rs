//! Binary (de)serialisation of [`DiGraph`] and structural fingerprinting.
//!
//! A graph is written as a self-contained little-endian *graph section*:
//!
//! | field         | size            | encoding                          |
//! |---------------|-----------------|-----------------------------------|
//! | `num_vertices`| 8 bytes         | `u64` LE                          |
//! | `num_edges`   | 8 bytes         | `u64` LE                          |
//! | `out_offsets` | `(n + 1) × 8`   | `u64` LE each                     |
//! | `out_targets` | `m × 4`         | `u32` LE each                     |
//! | `out_probs`   | `m × 8`         | `f64::to_bits` as `u64` LE each   |
//!
//! Only the out-CSR is stored: the in-adjacency and the integer coin
//! thresholds are derived data and are rebuilt in `O(n + m)` on load, so the
//! deserialised graph occupies the exact same in-memory layout as the
//! original. The arrays are written as bulk slices (no per-edge framing),
//! which keeps both directions bandwidth-bound.
//!
//! [`DiGraph::fingerprint`] hashes the same logical content (vertex count
//! plus the out-CSR arenas, probabilities by bit pattern) into a 64-bit
//! value. Two graphs have equal fingerprints iff they have identical
//! topology *and* identical edge probabilities, up to hash collisions; the
//! snapshot format of the core crate stores it so a resident pool can never
//! be silently re-attached to the wrong graph.

use crate::{DiGraph, Result};
use std::io::{Read, Write};

/// Byte size of the graph section [`DiGraph::write_binary`] emits.
pub fn binary_size(graph: &DiGraph) -> u64 {
    let n = graph.num_vertices() as u64;
    let m = graph.num_edges() as u64;
    16 + (n + 1) * 8 + m * 4 + m * 8
}

/// FNV-1a–style 64-bit word hash used by [`DiGraph::fingerprint`]. The
/// stream is consumed as whole `u64` words, so it is cheap on the CSR
/// arenas; this is a structural fingerprint, not a cryptographic hash.
struct WordHash(u64);

impl WordHash {
    const OFFSET_BASIS: u64 = 0xCBF2_9CE4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;

    fn new() -> Self {
        WordHash(Self::OFFSET_BASIS)
    }

    #[inline]
    fn push(&mut self, word: u64) {
        self.0 = (self.0 ^ word).wrapping_mul(Self::PRIME);
    }

    fn finish(&self) -> u64 {
        // SplitMix64 finaliser for avalanche on the low bits.
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Chunked helpers: pack typed slices into a stack buffer and hand the
/// writer large contiguous byte runs (and vice versa for reading), keeping
/// serialisation bandwidth-bound without any `unsafe` transmutes.
const CHUNK_WORDS: usize = 1024;

fn write_u64s<W: Write>(w: &mut W, values: impl Iterator<Item = u64>) -> std::io::Result<()> {
    let mut buf = [0u8; CHUNK_WORDS * 8];
    let mut filled = 0usize;
    for v in values {
        buf[filled..filled + 8].copy_from_slice(&v.to_le_bytes());
        filled += 8;
        if filled == buf.len() {
            w.write_all(&buf)?;
            filled = 0;
        }
    }
    if filled > 0 {
        w.write_all(&buf[..filled])?;
    }
    Ok(())
}

/// Writes a `u32` slice as little-endian bytes, packed through a stack
/// buffer so the writer sees large contiguous runs. Shared by the graph
/// section writer and the pool-snapshot writer of the core crate.
///
/// # Errors
/// Propagates I/O errors from the writer.
pub fn write_u32s<W: Write>(w: &mut W, values: &[u32]) -> std::io::Result<()> {
    let mut buf = [0u8; CHUNK_WORDS * 4];
    for chunk in values.chunks(CHUNK_WORDS) {
        let mut filled = 0usize;
        for v in chunk {
            buf[filled..filled + 4].copy_from_slice(&v.to_le_bytes());
            filled += 4;
        }
        w.write_all(&buf[..filled])?;
    }
    Ok(())
}

/// Reads `len` little-endian `u64` words. The vector grows as bytes
/// actually arrive (bounded chunks), so a corrupt length cannot trigger an
/// absurd up-front allocation: a lying header runs into EOF first.
fn read_u64s<R: Read>(r: &mut R, len: usize) -> std::io::Result<Vec<u64>> {
    let mut out = Vec::with_capacity(len.min(1 << 22));
    let mut buf = [0u8; CHUNK_WORDS * 8];
    let mut remaining = len;
    while remaining > 0 {
        let take = remaining.min(CHUNK_WORDS);
        r.read_exact(&mut buf[..take * 8])?;
        out.extend(
            buf[..take * 8]
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk"))),
        );
        remaining -= take;
    }
    Ok(out)
}

/// Reads `len` little-endian `u32` words with the same bounded-allocation
/// strategy as [`read_u64s`].
fn read_u32s<R: Read>(r: &mut R, len: usize) -> std::io::Result<Vec<u32>> {
    let mut out = Vec::with_capacity(len.min(1 << 23));
    let mut buf = [0u8; CHUNK_WORDS * 4];
    let mut remaining = len;
    while remaining > 0 {
        let take = remaining.min(CHUNK_WORDS);
        r.read_exact(&mut buf[..take * 4])?;
        out.extend(
            buf[..take * 4]
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunk"))),
        );
        remaining -= take;
    }
    Ok(out)
}

fn read_u64<R: Read>(r: &mut R) -> std::io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

impl DiGraph {
    /// Structural 64-bit fingerprint of the graph: vertex count, edge count,
    /// the out-CSR offsets and targets, and every propagation probability by
    /// exact bit pattern. Serialising and deserialising a graph preserves
    /// its fingerprint; any change to topology or probabilities changes it
    /// (up to hash collisions).
    pub fn fingerprint(&self) -> u64 {
        let (offsets, targets, probs) = self.raw_out_csr();
        let mut h = WordHash::new();
        h.push(self.num_vertices() as u64);
        h.push(self.num_edges() as u64);
        for &o in offsets {
            h.push(o as u64);
        }
        for &t in targets {
            h.push(t as u64);
        }
        for &p in probs {
            h.push(p.to_bits());
        }
        h.finish()
    }

    /// Writes the graph as the binary section documented in [`crate::binfmt`].
    ///
    /// # Errors
    /// Propagates I/O errors from the writer.
    pub fn write_binary<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        let (offsets, targets, probs) = self.raw_out_csr();
        w.write_all(&(self.num_vertices() as u64).to_le_bytes())?;
        w.write_all(&(self.num_edges() as u64).to_le_bytes())?;
        write_u64s(w, offsets.iter().map(|&o| o as u64))?;
        write_u32s(w, targets)?;
        write_u64s(w, probs.iter().map(|&p| p.to_bits()))?;
        Ok(())
    }

    /// Reads a graph section previously written by [`DiGraph::write_binary`],
    /// validating the CSR invariants and rebuilding the in-adjacency and the
    /// coin thresholds.
    ///
    /// # Errors
    /// Returns [`crate::GraphError::Io`] on I/O failure (including premature
    /// EOF) and [`crate::GraphError::CorruptBinary`] /
    /// [`crate::GraphError::VertexOutOfRange`] /
    /// [`crate::GraphError::InvalidProbability`] when the section is not a
    /// well-formed graph.
    pub fn read_binary<R: Read>(r: &mut R) -> Result<DiGraph> {
        let n = read_u64(r)?;
        let m = read_u64(r)?;
        if n >= u32::MAX as u64 {
            return Err(crate::GraphError::TooManyVertices {
                requested: n as usize,
            });
        }
        let n = n as usize;
        let m = m as usize;
        let offsets: Vec<usize> = read_u64s(r, n + 1)?
            .into_iter()
            .map(|o| o as usize)
            .collect();
        let targets = read_u32s(r, m)?;
        let probs: Vec<f64> = read_u64s(r, m)?.into_iter().map(f64::from_bits).collect();
        DiGraph::from_raw_out_csr(n, offsets, targets, probs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generators, GraphError, VertexId};

    fn sample_graph() -> DiGraph {
        generators::preferential_attachment(180, 3, true, 0.37, 11).unwrap()
    }

    fn roundtrip(g: &DiGraph) -> DiGraph {
        let mut bytes = Vec::new();
        g.write_binary(&mut bytes).unwrap();
        assert_eq!(bytes.len() as u64, binary_size(g), "binary_size is exact");
        DiGraph::read_binary(&mut bytes.as_slice()).unwrap()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let g = sample_graph();
        let back = roundtrip(&g);
        assert_eq!(back.num_vertices(), g.num_vertices());
        assert_eq!(back.num_edges(), g.num_edges());
        assert_eq!(back.fingerprint(), g.fingerprint());
        assert!(back.validate().is_ok(), "derived arrays are consistent");
        for u in g.vertices() {
            assert_eq!(back.out_neighbors(u), g.out_neighbors(u));
            assert_eq!(back.out_probabilities(u), g.out_probabilities(u));
            assert_eq!(back.in_neighbors(u), g.in_neighbors(u));
            assert_eq!(back.out_coin_thresholds(u), g.out_coin_thresholds(u));
        }
    }

    #[test]
    fn empty_and_tiny_graphs_roundtrip() {
        for g in [
            DiGraph::empty(0),
            DiGraph::empty(5),
            DiGraph::from_edges(2, vec![(VertexId::new(0), VertexId::new(1), 0.25)]).unwrap(),
        ] {
            let back = roundtrip(&g);
            assert_eq!(back.fingerprint(), g.fingerprint());
            assert!(back.validate().is_ok());
        }
    }

    #[test]
    fn fingerprint_is_sensitive_to_topology_and_probabilities() {
        let g = sample_graph();
        let same = generators::preferential_attachment(180, 3, true, 0.37, 11).unwrap();
        assert_eq!(g.fingerprint(), same.fingerprint(), "deterministic");
        let other_seed = generators::preferential_attachment(180, 3, true, 0.37, 12).unwrap();
        assert_ne!(g.fingerprint(), other_seed.fingerprint());
        let reweighted = g.map_probabilities(|_, _, p| p * 0.5).unwrap();
        assert_ne!(g.fingerprint(), reweighted.fingerprint());
    }

    #[test]
    fn truncated_sections_surface_io_errors() {
        let g = sample_graph();
        let mut bytes = Vec::new();
        g.write_binary(&mut bytes).unwrap();
        for cut in [0, 7, 16, 40, bytes.len() - 1] {
            let err = DiGraph::read_binary(&mut &bytes[..cut]).unwrap_err();
            assert!(matches!(err, GraphError::Io(_)), "cut at {cut}: {err:?}");
        }
    }

    #[test]
    fn corrupt_sections_surface_typed_errors() {
        let g = sample_graph();
        let mut bytes = Vec::new();
        g.write_binary(&mut bytes).unwrap();

        // Non-monotone offsets.
        let mut broken = bytes.clone();
        broken[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            DiGraph::read_binary(&mut broken.as_slice()),
            Err(GraphError::CorruptBinary { .. })
        ));

        // A probability outside [0, 1].
        let mut broken = bytes.clone();
        let probs_start = bytes.len() - 8 * g.num_edges();
        broken[probs_start..probs_start + 8].copy_from_slice(&2.5f64.to_bits().to_le_bytes());
        assert!(matches!(
            DiGraph::read_binary(&mut broken.as_slice()),
            Err(GraphError::InvalidProbability { .. })
        ));

        // An impossible vertex count.
        let mut broken = bytes;
        broken[0..8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            DiGraph::read_binary(&mut broken.as_slice()),
            Err(GraphError::TooManyVertices { .. })
        ));
    }
}
