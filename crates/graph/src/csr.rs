//! Compressed-sparse-row (CSR) directed graph with edge propagation
//! probabilities.
//!
//! [`DiGraph`] is the central data structure of the workspace. Both the
//! out-adjacency and the in-adjacency are materialised, because the paper's
//! algorithms need both directions:
//!
//! * live-edge sampling and BFS/DFS walk the **out**-edges of each vertex
//!   (§V-B2, Definition 4),
//! * the weighted-cascade probability model assigns `p(u,v) = 1/d_in(v)`
//!   and the blocker semantics of Definition 2 zero all **in**-edges of a
//!   blocked vertex,
//! * the multi-seed merge of §V rewires the in-edges of seed out-neighbours.
//!
//! Edges of a vertex are stored sorted by target (respectively source) id,
//! which makes `has_edge`/`edge_probability` a binary search and gives
//! deterministic iteration order.

use crate::error::validate_probability;
use crate::{GraphError, Result, VertexId};

/// A borrowed view of a single directed edge.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EdgeRef {
    /// Source vertex of the edge.
    pub source: VertexId,
    /// Target vertex of the edge.
    pub target: VertexId,
    /// Propagation probability `p(source, target)` under the IC model.
    pub probability: f64,
}

/// A directed graph in CSR form with a propagation probability per edge.
///
/// Construct one through [`crate::GraphBuilder`], the [`crate::generators`]
/// module, or [`crate::edgelist`] I/O. The structure is immutable except for
/// probability reassignment (see [`DiGraph::map_probabilities`]), which keeps
/// the topology fixed — exactly the operations the influence-minimization
/// algorithms need.
#[derive(Clone, Debug)]
pub struct DiGraph {
    num_vertices: usize,
    out_offsets: Vec<usize>,
    out_targets: Vec<u32>,
    out_probs: Vec<f64>,
    /// Per-out-edge integer coin thresholds (see [`coin_threshold`]),
    /// precomputed so live-edge samplers can decide each coin with a single
    /// `u64` comparison instead of float arithmetic.
    out_thresholds: Vec<u64>,
    in_offsets: Vec<usize>,
    in_sources: Vec<u32>,
    in_probs: Vec<f64>,
}

/// Sentinel threshold meaning "always live" (probability ≥ 1).
pub const THRESHOLD_ALWAYS: u64 = u64::MAX;

/// The integer coin threshold of a probability: the number of 53-bit
/// mantissa values `k` with `k · 2⁻⁵³ < p`.
///
/// A uniform draw `k = rng.next_u64() >> 11` is live iff `k < threshold`,
/// which is **bit-identical** to `rand`'s `gen_bool(p)` (`(k as f64) · 2⁻⁵³
/// < p`): multiplying an `f64` in `(0, 1)` by `2⁵³` only shifts the
/// exponent, so `p · 2⁵³` is exact and `ceil` of it counts the passing `k`
/// exactly. Probabilities ≤ 0 map to 0 (never live) and ≥ 1 to
/// [`THRESHOLD_ALWAYS`] so samplers can skip the coin flip entirely, keeping
/// RNG streams identical to the branching `gen_bool` formulation.
pub fn coin_threshold(p: f64) -> u64 {
    if p <= 0.0 {
        0
    } else if p >= 1.0 {
        THRESHOLD_ALWAYS
    } else {
        (p * 9_007_199_254_740_992.0).ceil() as u64 // p · 2⁵³, exact
    }
}

impl DiGraph {
    /// Builds a graph from a vertex count and a list of `(source, target,
    /// probability)` triples.
    ///
    /// Parallel edges are merged with the noisy-or rule
    /// `1 - Π(1 - p_i)` (the same combination rule the paper uses when
    /// merging multiple seeds into one, §V). Self loops are kept as supplied;
    /// use [`crate::GraphBuilder`] if self loops must be rejected or dropped.
    ///
    /// # Errors
    /// Returns an error if any endpoint is out of range or a probability is
    /// not a finite value in `[0, 1]`.
    pub fn from_edges(
        num_vertices: usize,
        edges: impl IntoIterator<Item = (VertexId, VertexId, f64)>,
    ) -> Result<Self> {
        if num_vertices >= u32::MAX as usize {
            return Err(GraphError::TooManyVertices {
                requested: num_vertices,
            });
        }
        let mut triples: Vec<(u32, u32, f64)> = Vec::new();
        for (u, v, p) in edges {
            if u.index() >= num_vertices {
                return Err(GraphError::VertexOutOfRange {
                    vertex: u.index(),
                    num_vertices,
                });
            }
            if v.index() >= num_vertices {
                return Err(GraphError::VertexOutOfRange {
                    vertex: v.index(),
                    num_vertices,
                });
            }
            validate_probability(p)?;
            triples.push((u.raw(), v.raw(), p));
        }
        Ok(Self::from_validated_triples(num_vertices, triples))
    }

    /// Builds a graph from already-validated triples, merging duplicates.
    ///
    /// This is the common back end of [`DiGraph::from_edges`] and
    /// [`crate::GraphBuilder::build`].
    pub(crate) fn from_validated_triples(
        num_vertices: usize,
        mut triples: Vec<(u32, u32, f64)>,
    ) -> Self {
        // Sort by (source, target) and merge parallel edges with noisy-or.
        triples.sort_unstable_by_key(|a| (a.0, a.1));
        let mut merged: Vec<(u32, u32, f64)> = Vec::with_capacity(triples.len());
        for (u, v, p) in triples {
            match merged.last_mut() {
                Some(last) if last.0 == u && last.1 == v => {
                    last.2 = 1.0 - (1.0 - last.2) * (1.0 - p);
                }
                _ => merged.push((u, v, p)),
            }
        }

        let m = merged.len();
        let mut out_offsets = vec![0usize; num_vertices + 1];
        for &(u, _, _) in &merged {
            out_offsets[u as usize + 1] += 1;
        }
        for i in 0..num_vertices {
            out_offsets[i + 1] += out_offsets[i];
        }
        let mut out_targets = vec![0u32; m];
        let mut out_probs = vec![0f64; m];
        {
            let mut cursor = out_offsets.clone();
            for &(u, v, p) in &merged {
                let pos = cursor[u as usize];
                out_targets[pos] = v;
                out_probs[pos] = p;
                cursor[u as usize] += 1;
            }
        }

        // Build the in-adjacency (sorted by source id within each target).
        let mut in_offsets = vec![0usize; num_vertices + 1];
        for &(_, v, _) in &merged {
            in_offsets[v as usize + 1] += 1;
        }
        for i in 0..num_vertices {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut in_sources = vec![0u32; m];
        let mut in_probs = vec![0f64; m];
        {
            let mut cursor = in_offsets.clone();
            // `merged` is sorted by (source, target); iterating in that order
            // fills each in-adjacency bucket in increasing source order.
            for &(u, v, p) in &merged {
                let pos = cursor[v as usize];
                in_sources[pos] = u;
                in_probs[pos] = p;
                cursor[v as usize] += 1;
            }
        }

        let out_thresholds = out_probs.iter().map(|&p| coin_threshold(p)).collect();
        DiGraph {
            num_vertices,
            out_offsets,
            out_targets,
            out_probs,
            out_thresholds,
            in_offsets,
            in_sources,
            in_probs,
        }
    }

    /// Creates an empty graph with `num_vertices` isolated vertices.
    pub fn empty(num_vertices: usize) -> Self {
        DiGraph {
            num_vertices,
            out_offsets: vec![0; num_vertices + 1],
            out_targets: Vec::new(),
            out_probs: Vec::new(),
            out_thresholds: Vec::new(),
            in_offsets: vec![0; num_vertices + 1],
            in_sources: Vec::new(),
            in_probs: Vec::new(),
        }
    }

    /// Recomputes the integer coin thresholds from the current
    /// probabilities. Must be called by anything that mutates `out_probs`.
    fn rebuild_thresholds(&mut self) {
        self.out_thresholds.clear();
        self.out_thresholds
            .extend(self.out_probs.iter().map(|&p| coin_threshold(p)));
    }

    /// Number of vertices `n`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of directed edges `m` (after merging parallel edges).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.out_targets.len()
    }

    /// Returns `true` if the graph has no edges.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.out_targets.is_empty()
    }

    /// Iterator over all vertex ids `0..n`.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + Clone + '_ {
        (0..self.num_vertices as u32).map(VertexId::from_raw)
    }

    /// Out-degree of `u` (number of distinct out-neighbours).
    #[inline]
    pub fn out_degree(&self, u: VertexId) -> usize {
        let i = u.index();
        self.out_offsets[i + 1] - self.out_offsets[i]
    }

    /// In-degree of `v` (number of distinct in-neighbours).
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        let i = v.index();
        self.in_offsets[i + 1] - self.in_offsets[i]
    }

    /// Total degree (in + out), the quantity reported as `d_avg`/`d_max`
    /// in Table IV of the paper.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.out_degree(v) + self.in_degree(v)
    }

    /// Slice of out-neighbour ids of `u`, sorted by id.
    #[inline]
    pub fn out_neighbors(&self, u: VertexId) -> &[u32] {
        let i = u.index();
        &self.out_targets[self.out_offsets[i]..self.out_offsets[i + 1]]
    }

    /// Slice of integer coin thresholds parallel to
    /// [`DiGraph::out_neighbors`] (see [`coin_threshold`]). Live-edge
    /// samplers use these to decide each coin with one `u64` comparison:
    /// `(rng.next_u64() >> 11) < threshold`, with 0 / [`THRESHOLD_ALWAYS`]
    /// marking deterministic edges whose coin must not be flipped at all.
    #[inline]
    pub fn out_coin_thresholds(&self, u: VertexId) -> &[u64] {
        let i = u.index();
        &self.out_thresholds[self.out_offsets[i]..self.out_offsets[i + 1]]
    }

    /// Slice of probabilities parallel to [`DiGraph::out_neighbors`].
    #[inline]
    pub fn out_probabilities(&self, u: VertexId) -> &[f64] {
        let i = u.index();
        &self.out_probs[self.out_offsets[i]..self.out_offsets[i + 1]]
    }

    /// Slice of in-neighbour ids of `v`, sorted by id.
    #[inline]
    pub fn in_neighbors(&self, v: VertexId) -> &[u32] {
        let i = v.index();
        &self.in_sources[self.in_offsets[i]..self.in_offsets[i + 1]]
    }

    /// Slice of probabilities parallel to [`DiGraph::in_neighbors`].
    #[inline]
    pub fn in_probabilities(&self, v: VertexId) -> &[f64] {
        let i = v.index();
        &self.in_probs[self.in_offsets[i]..self.in_offsets[i + 1]]
    }

    /// Iterator over `(neighbour, probability)` pairs of the out-edges of `u`.
    pub fn out_edges(&self, u: VertexId) -> impl Iterator<Item = (VertexId, f64)> + '_ {
        self.out_neighbors(u)
            .iter()
            .zip(self.out_probabilities(u))
            .map(|(&t, &p)| (VertexId::from_raw(t), p))
    }

    /// Iterator over `(neighbour, probability)` pairs of the in-edges of `v`.
    pub fn in_edges(&self, v: VertexId) -> impl Iterator<Item = (VertexId, f64)> + '_ {
        self.in_neighbors(v)
            .iter()
            .zip(self.in_probabilities(v))
            .map(|(&s, &p)| (VertexId::from_raw(s), p))
    }

    /// Iterator over every edge of the graph in `(source, target)` order.
    pub fn edges(&self) -> impl Iterator<Item = EdgeRef> + '_ {
        self.vertices().flat_map(move |u| {
            self.out_edges(u).map(move |(v, p)| EdgeRef {
                source: u,
                target: v,
                probability: p,
            })
        })
    }

    /// Returns `true` if the edge `(u, v)` exists.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.edge_probability(u, v).is_some()
    }

    /// Returns the propagation probability of edge `(u, v)` if it exists.
    pub fn edge_probability(&self, u: VertexId, v: VertexId) -> Option<f64> {
        let targets = self.out_neighbors(u);
        targets
            .binary_search(&v.raw())
            .ok()
            .map(|pos| self.out_probabilities(u)[pos])
    }

    /// Returns a new graph with the same topology and probabilities
    /// re-assigned by `f(source, target, old_probability)`.
    ///
    /// This is how the Trivalency and Weighted-Cascade models of §VI-A are
    /// applied to a topology: the closure receives both endpoints so it can
    /// inspect degrees (e.g. `1 / d_in(target)` for WC).
    ///
    /// # Errors
    /// Returns an error if the closure produces a probability outside
    /// `[0, 1]` or a non-finite value.
    pub fn map_probabilities<F>(&self, mut f: F) -> Result<DiGraph>
    where
        F: FnMut(VertexId, VertexId, f64) -> f64,
    {
        let mut out = self.clone();
        for u in 0..self.num_vertices {
            let (start, end) = (self.out_offsets[u], self.out_offsets[u + 1]);
            for idx in start..end {
                let v = self.out_targets[idx];
                let p = f(VertexId::new(u), VertexId::from_raw(v), self.out_probs[idx]);
                validate_probability(p)?;
                out.out_probs[idx] = p;
            }
        }
        // Rebuild the in-probability array so both views stay consistent.
        for v in 0..self.num_vertices {
            let (start, end) = (self.in_offsets[v], self.in_offsets[v + 1]);
            for idx in start..end {
                let u = VertexId::from_raw(self.in_sources[idx]);
                let p = out
                    .edge_probability(u, VertexId::new(v))
                    .expect("in-edge must exist in the out-adjacency");
                out.in_probs[idx] = p;
            }
        }
        out.rebuild_thresholds();
        Ok(out)
    }

    /// Returns the reverse graph (every edge `(u, v)` becomes `(v, u)` with
    /// the same probability).
    pub fn reverse(&self) -> DiGraph {
        let mut reversed = DiGraph {
            num_vertices: self.num_vertices,
            out_offsets: self.in_offsets.clone(),
            out_targets: self.in_sources.clone(),
            out_probs: self.in_probs.clone(),
            out_thresholds: Vec::new(),
            in_offsets: self.out_offsets.clone(),
            in_sources: self.out_targets.clone(),
            in_probs: self.out_probs.clone(),
        };
        reversed.rebuild_thresholds();
        reversed
    }

    /// Sum of all edge probabilities; a cheap sanity statistic used by tests
    /// and dataset summaries.
    pub fn total_probability_mass(&self) -> f64 {
        self.out_probs.iter().sum()
    }

    /// Maximum total degree over all vertices (`d_max` in Table IV).
    pub fn max_degree(&self) -> usize {
        self.vertices().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Average total degree (`d_avg` in Table IV). For a directed graph this
    /// is `2m / n` because each edge contributes one out- and one in-degree.
    pub fn average_degree(&self) -> f64 {
        if self.num_vertices == 0 {
            0.0
        } else {
            2.0 * self.num_edges() as f64 / self.num_vertices as f64
        }
    }

    /// Approximate heap memory used by the CSR arrays, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.out_offsets.len() * std::mem::size_of::<usize>()
            + self.in_offsets.len() * std::mem::size_of::<usize>()
            + self.out_targets.len() * std::mem::size_of::<u32>()
            + self.in_sources.len() * std::mem::size_of::<u32>()
            + self.out_probs.len() * std::mem::size_of::<f64>()
            + self.in_probs.len() * std::mem::size_of::<f64>()
            + self.out_thresholds.len() * std::mem::size_of::<u64>()
    }

    /// Raw out-CSR arrays `(offsets, targets, probabilities)` — the exact
    /// in-memory arenas, exposed crate-internally so the binary
    /// (de)serialisation in [`crate::binfmt`] can write them as flat slices.
    pub(crate) fn raw_out_csr(&self) -> (&[usize], &[u32], &[f64]) {
        (&self.out_offsets, &self.out_targets, &self.out_probs)
    }

    /// Rebuilds a graph from its raw out-CSR arrays, validating the CSR
    /// invariants and re-deriving the in-adjacency and the coin thresholds.
    /// This is the deserialisation back end of [`crate::binfmt`].
    pub(crate) fn from_raw_out_csr(
        num_vertices: usize,
        out_offsets: Vec<usize>,
        out_targets: Vec<u32>,
        out_probs: Vec<f64>,
    ) -> Result<Self> {
        let corrupt = |message: String| GraphError::CorruptBinary { message };
        if num_vertices >= u32::MAX as usize {
            return Err(GraphError::TooManyVertices {
                requested: num_vertices,
            });
        }
        let m = out_targets.len();
        if out_offsets.len() != num_vertices + 1 {
            return Err(corrupt(format!(
                "offset array has {} entries, expected {}",
                out_offsets.len(),
                num_vertices + 1
            )));
        }
        if out_offsets[0] != 0 || *out_offsets.last().expect("offsets are non-empty") != m {
            return Err(corrupt("offset array does not span the edge list".into()));
        }
        if out_probs.len() != m {
            return Err(corrupt(format!(
                "probability array has {} entries, expected {m}",
                out_probs.len()
            )));
        }
        for w in out_offsets.windows(2) {
            if w[0] > w[1] {
                return Err(corrupt("offset array is not monotone".into()));
            }
        }
        for u in 0..num_vertices {
            let targets = &out_targets[out_offsets[u]..out_offsets[u + 1]];
            for w in targets.windows(2) {
                if w[0] >= w[1] {
                    return Err(corrupt(format!(
                        "out-adjacency of vertex {u} is not strictly sorted"
                    )));
                }
            }
            if let Some(&last) = targets.last() {
                if last as usize >= num_vertices {
                    return Err(GraphError::VertexOutOfRange {
                        vertex: last as usize,
                        num_vertices,
                    });
                }
            }
        }
        for &p in &out_probs {
            validate_probability(p)?;
        }

        // Re-derive the in-adjacency with a counting sort. Iterating edges in
        // (source, target) order fills each in-bucket in increasing source
        // order, the same invariant `from_validated_triples` establishes.
        let mut in_offsets = vec![0usize; num_vertices + 1];
        for &v in &out_targets {
            in_offsets[v as usize + 1] += 1;
        }
        for i in 0..num_vertices {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut in_sources = vec![0u32; m];
        let mut in_probs = vec![0f64; m];
        {
            let mut cursor = in_offsets.clone();
            for u in 0..num_vertices {
                for idx in out_offsets[u]..out_offsets[u + 1] {
                    let v = out_targets[idx] as usize;
                    let pos = cursor[v];
                    in_sources[pos] = u as u32;
                    in_probs[pos] = out_probs[idx];
                    cursor[v] += 1;
                }
            }
        }
        let out_thresholds = out_probs.iter().map(|&p| coin_threshold(p)).collect();
        Ok(DiGraph {
            num_vertices,
            out_offsets,
            out_targets,
            out_probs,
            out_thresholds,
            in_offsets,
            in_sources,
            in_probs,
        })
    }

    /// Checks internal CSR invariants; used by tests and debug assertions.
    ///
    /// Verified invariants:
    /// * offsets are monotonically non-decreasing and end at `m`,
    /// * adjacency lists are strictly sorted (no duplicate edges),
    /// * every out-edge has a matching in-edge with the same probability,
    /// * all probabilities are finite and within `[0, 1]`.
    pub fn validate(&self) -> Result<()> {
        let m = self.num_edges();
        if *self.out_offsets.last().unwrap_or(&0) != m || *self.in_offsets.last().unwrap_or(&0) != m
        {
            return Err(GraphError::InvalidGeneratorArgument {
                message: "CSR offsets do not cover all edges".into(),
            });
        }
        for w in self
            .out_offsets
            .windows(2)
            .chain(self.in_offsets.windows(2))
        {
            if w[0] > w[1] {
                return Err(GraphError::InvalidGeneratorArgument {
                    message: "CSR offsets are not monotone".into(),
                });
            }
        }
        for u in self.vertices() {
            let targets = self.out_neighbors(u);
            for w in targets.windows(2) {
                if w[0] >= w[1] {
                    return Err(GraphError::InvalidGeneratorArgument {
                        message: format!("out-adjacency of {u} is not strictly sorted"),
                    });
                }
            }
            let sources = self.in_neighbors(u);
            for w in sources.windows(2) {
                if w[0] >= w[1] {
                    return Err(GraphError::InvalidGeneratorArgument {
                        message: format!("in-adjacency of {u} is not strictly sorted"),
                    });
                }
            }
        }
        if self.out_thresholds.len() != m {
            return Err(GraphError::InvalidGeneratorArgument {
                message: "coin-threshold array out of sync with the edge list".into(),
            });
        }
        for (&p, &t) in self.out_probs.iter().zip(&self.out_thresholds) {
            if t != coin_threshold(p) {
                return Err(GraphError::InvalidGeneratorArgument {
                    message: format!("stale coin threshold for probability {p}"),
                });
            }
        }
        for e in self.edges() {
            validate_probability(e.probability)?;
            let p_in = self
                .in_edges(e.target)
                .find(|(s, _)| *s == e.source)
                .map(|(_, p)| p);
            if p_in != Some(e.probability) {
                return Err(GraphError::InvalidGeneratorArgument {
                    message: format!(
                        "edge ({}, {}) missing or inconsistent in the in-adjacency",
                        e.source, e.target
                    ),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vid(i: usize) -> VertexId {
        VertexId::new(i)
    }

    #[test]
    fn coin_thresholds_match_float_coins_exactly() {
        // The integer decision `k < coin_threshold(p)` must agree with the
        // float decision `(k as f64) · 2⁻⁵³ < p` for every mantissa value k,
        // including the boundary values around p · 2⁵³.
        let scale = 1.0 / 9_007_199_254_740_992.0; // 2⁻⁵³
        let probs = [
            0.5,
            0.25,
            1.0 / 3.0,
            0.123_456_789,
            1e-9,
            1.0 - 1e-12,
            f64::EPSILON,
            0.999_999_999,
        ];
        for &p in &probs {
            let t = coin_threshold(p);
            assert!(t > 0 && t != THRESHOLD_ALWAYS, "p={p} must need a coin");
            // Probe k around the threshold plus the extremes.
            for k in [0u64, 1, t.saturating_sub(2), t - 1, t, t + 1, (1 << 53) - 1] {
                if k >= (1 << 53) {
                    continue;
                }
                let float_live = (k as f64) * scale < p;
                let int_live = k < t;
                assert_eq!(int_live, float_live, "p={p}, k={k}");
            }
        }
        assert_eq!(coin_threshold(0.0), 0);
        assert_eq!(coin_threshold(-1.0), 0);
        assert_eq!(coin_threshold(1.0), THRESHOLD_ALWAYS);
        assert_eq!(coin_threshold(1.5), THRESHOLD_ALWAYS);
    }

    #[test]
    fn thresholds_follow_probability_reassignment() {
        let g = diamond();
        assert!(g.validate().is_ok());
        let wc = g
            .map_probabilities(|_, v, _| 1.0 / g.in_degree(v).max(1) as f64)
            .unwrap();
        assert!(wc.validate().is_ok(), "thresholds rebuilt after remap");
        let rev = wc.reverse();
        assert!(rev.validate().is_ok(), "thresholds rebuilt after reverse");
        for u in rev.vertices() {
            assert_eq!(
                rev.out_coin_thresholds(u).len(),
                rev.out_degree(u),
                "thresholds stay parallel to the adjacency"
            );
        }
    }

    fn diamond() -> DiGraph {
        // 0 -> 1 -> 3, 0 -> 2 -> 3
        DiGraph::from_edges(
            4,
            vec![
                (vid(0), vid(1), 0.5),
                (vid(0), vid(2), 0.25),
                (vid(1), vid(3), 1.0),
                (vid(2), vid(3), 0.75),
            ],
        )
        .unwrap()
    }

    #[test]
    fn counts_and_degrees() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert!(!g.is_empty());
        assert_eq!(g.out_degree(vid(0)), 2);
        assert_eq!(g.in_degree(vid(0)), 0);
        assert_eq!(g.in_degree(vid(3)), 2);
        assert_eq!(g.out_degree(vid(3)), 0);
        assert_eq!(g.degree(vid(1)), 2);
        assert_eq!(g.max_degree(), 2);
        assert!((g.average_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn adjacency_and_probabilities() {
        let g = diamond();
        assert_eq!(g.out_neighbors(vid(0)), &[1, 2]);
        assert_eq!(g.out_probabilities(vid(0)), &[0.5, 0.25]);
        assert_eq!(g.in_neighbors(vid(3)), &[1, 2]);
        assert_eq!(g.in_probabilities(vid(3)), &[1.0, 0.75]);
        assert_eq!(g.edge_probability(vid(0), vid(1)), Some(0.5));
        assert_eq!(g.edge_probability(vid(1), vid(0)), None);
        assert!(g.has_edge(vid(2), vid(3)));
        assert!(!g.has_edge(vid(3), vid(2)));
    }

    #[test]
    fn edges_iterator_is_sorted_by_source_then_target() {
        let g = diamond();
        let edges: Vec<(u32, u32)> = g
            .edges()
            .map(|e| (e.source.raw(), e.target.raw()))
            .collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn parallel_edges_are_merged_noisy_or() {
        let g = DiGraph::from_edges(2, vec![(vid(0), vid(1), 0.5), (vid(0), vid(1), 0.5)]).unwrap();
        assert_eq!(g.num_edges(), 1);
        let p = g.edge_probability(vid(0), vid(1)).unwrap();
        assert!((p - 0.75).abs() < 1e-12, "noisy-or of 0.5 and 0.5 is 0.75");
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        assert!(DiGraph::from_edges(2, vec![(vid(0), vid(5), 0.5)]).is_err());
        assert!(DiGraph::from_edges(2, vec![(vid(5), vid(0), 0.5)]).is_err());
        assert!(DiGraph::from_edges(2, vec![(vid(0), vid(1), 1.5)]).is_err());
        assert!(DiGraph::from_edges(2, vec![(vid(0), vid(1), f64::NAN)]).is_err());
    }

    #[test]
    fn empty_graph() {
        let g = DiGraph::empty(3);
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 0);
        assert!(g.is_empty());
        assert_eq!(g.out_degree(vid(2)), 0);
        assert!(g.validate().is_ok());
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.average_degree(), 0.0);
    }

    #[test]
    fn map_probabilities_weighted_cascade() {
        let g = diamond();
        let wc = g
            .map_probabilities(|_, v, _| 1.0 / g.in_degree(v) as f64)
            .unwrap();
        assert_eq!(wc.edge_probability(vid(0), vid(1)), Some(1.0));
        assert_eq!(wc.edge_probability(vid(1), vid(3)), Some(0.5));
        assert_eq!(wc.edge_probability(vid(2), vid(3)), Some(0.5));
        // In-adjacency stays consistent after the rewrite.
        assert!(wc.validate().is_ok());
    }

    #[test]
    fn map_probabilities_rejects_invalid_output() {
        let g = diamond();
        assert!(g.map_probabilities(|_, _, _| 2.0).is_err());
        assert!(g.map_probabilities(|_, _, _| f64::NAN).is_err());
    }

    #[test]
    fn reverse_swaps_directions() {
        let g = diamond();
        let r = g.reverse();
        assert_eq!(r.num_edges(), g.num_edges());
        assert!(r.has_edge(vid(1), vid(0)));
        assert!(r.has_edge(vid(3), vid(2)));
        assert!(!r.has_edge(vid(0), vid(1)));
        assert_eq!(r.edge_probability(vid(3), vid(1)), Some(1.0));
        assert!(r.validate().is_ok());
    }

    #[test]
    fn validate_accepts_well_formed_graphs() {
        assert!(diamond().validate().is_ok());
    }

    #[test]
    fn total_probability_mass_sums_edges() {
        let g = diamond();
        assert!((g.total_probability_mass() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn memory_estimate_is_nonzero() {
        assert!(diamond().memory_bytes() > 0);
    }

    #[test]
    fn self_loops_are_representable_via_from_edges() {
        let g = DiGraph::from_edges(2, vec![(vid(0), vid(0), 0.3), (vid(0), vid(1), 0.2)]).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edge_probability(vid(0), vid(0)), Some(0.3));
        assert!(g.validate().is_ok());
    }
}
