//! Random and structured graph generators.
//!
//! The paper evaluates on eight SNAP social networks (Table IV). Those exact
//! files cannot be redistributed with this repository, so the dataset crate
//! synthesises stand-ins with matching size and degree skew using the
//! generators below (see DESIGN.md, "Substitutions"). The same generators
//! drive the property-based tests and the scaling micro-benchmarks.
//!
//! All generators are deterministic given the `seed` argument, produce
//! simple directed graphs (no parallel edges; self loops dropped) and assign
//! every edge the supplied `probability` — callers typically re-assign
//! probabilities afterwards with the Trivalency or Weighted-Cascade model
//! from `imin-diffusion`.

use crate::{DiGraph, GraphBuilder, GraphError, Result, VertexId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

fn vid(i: usize) -> VertexId {
    VertexId::new(i)
}

/// Directed Erdős–Rényi graph `G(n, p_edge)`: every ordered pair `(u, v)`,
/// `u != v`, is an edge independently with probability `p_edge`.
///
/// For sparse graphs (`p_edge` small) the generator uses geometric skipping,
/// so the cost is proportional to the number of generated edges rather than
/// `n²`.
pub fn erdos_renyi(n: usize, p_edge: f64, probability: f64, seed: u64) -> Result<DiGraph> {
    if !(0.0..=1.0).contains(&p_edge) || !p_edge.is_finite() {
        return Err(GraphError::InvalidGeneratorArgument {
            message: format!("edge probability {p_edge} must be in [0, 1]"),
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(n);
    if n == 0 || p_edge == 0.0 {
        return Ok(builder.build());
    }
    let total_pairs = (n as u128) * (n as u128 - 1);
    if p_edge >= 1.0 {
        for u in 0..n {
            for v in 0..n {
                if u != v {
                    builder.add_edge(vid(u), vid(v), probability)?;
                }
            }
        }
        return Ok(builder.build());
    }
    // Geometric skipping over the implicit ordered-pair index space.
    let log_q = (1.0 - p_edge).ln();
    let mut idx: i128 = -1;
    loop {
        let r: f64 = rng.gen_range(f64::EPSILON..1.0);
        let skip = (r.ln() / log_q).floor() as i128 + 1;
        idx += skip;
        if idx as u128 >= total_pairs {
            break;
        }
        let flat = idx as u128;
        let u = (flat / (n as u128 - 1)) as usize;
        let mut v = (flat % (n as u128 - 1)) as usize;
        if v >= u {
            v += 1; // skip the diagonal
        }
        builder.add_edge(vid(u), vid(v), probability)?;
    }
    Ok(builder.build())
}

/// Directed `G(n, m)` graph: exactly `m` distinct ordered pairs chosen
/// uniformly at random (self loops excluded).
pub fn gnm_random(n: usize, m: usize, probability: f64, seed: u64) -> Result<DiGraph> {
    let max_edges = n.saturating_mul(n.saturating_sub(1));
    if m > max_edges {
        return Err(GraphError::InvalidGeneratorArgument {
            message: format!("{m} edges requested but at most {max_edges} are possible"),
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_capacity(n, m);
    let mut chosen = std::collections::HashSet::with_capacity(m * 2);
    // Rejection sampling is fine while m is well below the maximum; fall back
    // to a shuffle of all pairs when the graph is dense.
    if m * 3 < max_edges || max_edges > 50_000_000 {
        while chosen.len() < m {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u == v {
                continue;
            }
            if chosen.insert((u as u32, v as u32)) {
                builder.add_edge(vid(u), vid(v), probability)?;
            }
        }
    } else {
        let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(max_edges);
        for u in 0..n as u32 {
            for v in 0..n as u32 {
                if u != v {
                    pairs.push((u, v));
                }
            }
        }
        pairs.shuffle(&mut rng);
        for &(u, v) in pairs.iter().take(m) {
            builder.add_edge(VertexId::from_raw(u), VertexId::from_raw(v), probability)?;
        }
    }
    Ok(builder.build())
}

/// Preferential-attachment graph (a directed Barabási–Albert variant).
///
/// Vertices arrive one by one; each new vertex issues `edges_per_vertex`
/// out-edges whose targets are chosen proportionally to the targets' current
/// (in-degree + 1). With `bidirectional = true` the reciprocal edge is also
/// added, which mimics the undirected SNAP datasets. The result has a
/// heavy-tailed in-degree distribution — the property that makes the
/// OutDegree heuristic and the greedy algorithms behave as in the paper.
pub fn preferential_attachment(
    n: usize,
    edges_per_vertex: usize,
    bidirectional: bool,
    probability: f64,
    seed: u64,
) -> Result<DiGraph> {
    if n > 0 && edges_per_vertex >= n {
        return Err(GraphError::InvalidGeneratorArgument {
            message: format!("edges_per_vertex ({edges_per_vertex}) must be smaller than n ({n})"),
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(n);
    if n == 0 {
        return Ok(builder.build());
    }
    // `targets` holds one entry per (in-degree + 1) unit of attractiveness,
    // so uniform sampling from it is preferential sampling.
    let mut attractiveness: Vec<u32> = Vec::with_capacity(n * (edges_per_vertex + 1));
    attractiveness.push(0);
    for new in 1..n {
        let k = edges_per_vertex.min(new);
        let mut picked = std::collections::HashSet::with_capacity(k * 2);
        let mut guard = 0usize;
        while picked.len() < k && guard < 50 * (k + 1) {
            guard += 1;
            let t = attractiveness[rng.gen_range(0..attractiveness.len())] as usize;
            if t != new {
                picked.insert(t);
            }
        }
        // If rejection failed to find enough distinct targets (tiny graphs),
        // top up with uniform choices.
        let mut fallback = 0usize;
        while picked.len() < k {
            if fallback != new {
                picked.insert(fallback);
            }
            fallback += 1;
        }
        // Sort for determinism: HashSet iteration order varies per instance
        // and would otherwise leak into the attractiveness sequence.
        let mut picked: Vec<usize> = picked.into_iter().collect();
        picked.sort_unstable();
        for &t in &picked {
            builder.add_edge(vid(new), vid(t), probability)?;
            attractiveness.push(t as u32);
            if bidirectional {
                builder.add_edge(vid(t), vid(new), probability)?;
                attractiveness.push(new as u32);
            }
        }
        attractiveness.push(new as u32);
    }
    Ok(builder.build())
}

/// Directed configuration-model graph with power-law out-degrees.
///
/// Out-degrees are sampled from a discrete power law with the given
/// `exponent` (typical social networks: 2.0–3.0), capped at `max_degree`,
/// then scaled so the expected edge count is close to `target_edges`.
/// Targets are chosen preferentially (proportional to in-degree + 1) so the
/// in-degree distribution is heavy-tailed as well.
pub fn power_law_digraph(
    n: usize,
    target_edges: usize,
    exponent: f64,
    max_degree: usize,
    probability: f64,
    seed: u64,
) -> Result<DiGraph> {
    if n == 0 {
        return Ok(DiGraph::empty(0));
    }
    if exponent <= 1.0 || !exponent.is_finite() {
        return Err(GraphError::InvalidGeneratorArgument {
            message: format!("power-law exponent {exponent} must be > 1"),
        });
    }
    let max_degree = max_degree.max(1).min(n.saturating_sub(1).max(1));
    let mut rng = StdRng::seed_from_u64(seed);

    // Sample raw power-law degrees via inverse transform on a Pareto-like
    // distribution, then rescale to hit the requested edge budget. The raw
    // draw is truncated at `max_degree` *before* the rescale: an untruncated
    // outlier (u near EPSILON gives degrees of ~1e12) would otherwise
    // dominate the sum, drive the scale factor towards zero and leave the
    // generated graph far below the requested edge budget once the outlier
    // itself is clamped.
    let mut degrees: Vec<f64> = (0..n)
        .map(|_| {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            u.powf(-1.0 / (exponent - 1.0)).min(max_degree as f64)
        })
        .collect();
    let sum: f64 = degrees.iter().sum();
    let scale = target_edges as f64 / sum;
    let mut total = 0usize;
    let int_degrees: Vec<usize> = degrees
        .iter_mut()
        .map(|d| {
            let scaled = (*d * scale).round() as usize;
            let clamped = scaled.min(max_degree);
            total += clamped;
            clamped
        })
        .collect();

    let mut builder = GraphBuilder::with_capacity(n, total);
    let mut attractiveness: Vec<u32> = (0..n as u32).collect();
    for (u, &d) in int_degrees.iter().enumerate() {
        let mut picked = std::collections::HashSet::with_capacity(d * 2);
        let mut guard = 0usize;
        while picked.len() < d && guard < 20 * (d + 1) {
            guard += 1;
            let t = attractiveness[rng.gen_range(0..attractiveness.len())] as usize;
            if t != u {
                picked.insert(t);
            }
        }
        let mut picked: Vec<usize> = picked.into_iter().collect();
        picked.sort_unstable();
        for &t in &picked {
            builder.add_edge(vid(u), vid(t), probability)?;
            attractiveness.push(t as u32);
        }
    }
    Ok(builder.build())
}

/// Directed Watts–Strogatz small-world graph: a ring lattice where each
/// vertex points to its `k` clockwise neighbours, with each edge's target
/// rewired uniformly at random with probability `rewire`.
pub fn watts_strogatz(
    n: usize,
    k: usize,
    rewire: f64,
    probability: f64,
    seed: u64,
) -> Result<DiGraph> {
    if n > 0 && k >= n {
        return Err(GraphError::InvalidGeneratorArgument {
            message: format!("k ({k}) must be smaller than n ({n})"),
        });
    }
    if !(0.0..=1.0).contains(&rewire) {
        return Err(GraphError::InvalidGeneratorArgument {
            message: format!("rewire probability {rewire} must be in [0, 1]"),
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(n);
    for u in 0..n {
        for offset in 1..=k {
            let mut v = (u + offset) % n;
            if rng.gen_bool(rewire) {
                // Rewire to a uniform random target distinct from u.
                let mut guard = 0;
                loop {
                    let cand = rng.gen_range(0..n);
                    if cand != u || guard > 20 {
                        v = cand;
                        break;
                    }
                    guard += 1;
                }
            }
            builder.add_edge(vid(u), vid(v), probability)?;
        }
    }
    Ok(builder.build())
}

/// Complete directed graph on `n` vertices (every ordered pair, no loops).
pub fn complete(n: usize, probability: f64) -> Result<DiGraph> {
    let mut builder = GraphBuilder::new(n);
    for u in 0..n {
        for v in 0..n {
            if u != v {
                builder.add_edge(vid(u), vid(v), probability)?;
            }
        }
    }
    Ok(builder.build())
}

/// Out-star: vertex 0 points to every other vertex.
pub fn out_star(n: usize, probability: f64) -> Result<DiGraph> {
    let mut builder = GraphBuilder::new(n);
    for v in 1..n {
        builder.add_edge(vid(0), vid(v), probability)?;
    }
    Ok(builder.build())
}

/// Directed path `0 -> 1 -> ... -> n-1`.
pub fn path(n: usize, probability: f64) -> Result<DiGraph> {
    let mut builder = GraphBuilder::new(n);
    for v in 1..n {
        builder.add_edge(vid(v - 1), vid(v), probability)?;
    }
    Ok(builder.build())
}

/// Directed cycle `0 -> 1 -> ... -> n-1 -> 0`.
pub fn cycle(n: usize, probability: f64) -> Result<DiGraph> {
    let mut builder = GraphBuilder::new(n);
    if n > 1 {
        for v in 1..n {
            builder.add_edge(vid(v - 1), vid(v), probability)?;
        }
        builder.add_edge(vid(n - 1), vid(0), probability)?;
    }
    Ok(builder.build())
}

/// Complete `arity`-ary out-tree with `depth` levels below the root
/// (depth 0 = a single vertex). Edges point from parents to children.
pub fn balanced_tree(arity: usize, depth: usize, probability: f64) -> Result<DiGraph> {
    if arity == 0 {
        return DiGraph::from_edges(1, Vec::new());
    }
    // Number of vertices: (arity^(depth+1) - 1) / (arity - 1), or depth+1 for arity 1.
    let n: usize = if arity == 1 {
        depth + 1
    } else {
        (arity.pow(depth as u32 + 1) - 1) / (arity - 1)
    };
    let mut builder = GraphBuilder::new(n);
    for parent in 0..n {
        for c in 0..arity {
            let child = parent * arity + c + 1;
            if child < n {
                builder.add_edge(vid(parent), vid(child), probability)?;
            }
        }
    }
    Ok(builder.build())
}

/// Layered DAG: `layers` layers of `width` vertices each; every vertex of
/// layer `i` points to each vertex of layer `i+1` independently with
/// probability `density`.
pub fn layered_dag(
    layers: usize,
    width: usize,
    density: f64,
    probability: f64,
    seed: u64,
) -> Result<DiGraph> {
    if !(0.0..=1.0).contains(&density) {
        return Err(GraphError::InvalidGeneratorArgument {
            message: format!("density {density} must be in [0, 1]"),
        });
    }
    let n = layers * width;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(n);
    for layer in 0..layers.saturating_sub(1) {
        for a in 0..width {
            for b in 0..width {
                if rng.gen_bool(density) {
                    let u = layer * width + a;
                    let v = (layer + 1) * width + b;
                    builder.add_edge(vid(u), vid(v), probability)?;
                }
            }
        }
    }
    Ok(builder.build())
}

/// Two-dimensional directed grid (`rows × cols`): each cell points right and
/// down. A simple planar topology used by tests and examples.
pub fn grid(rows: usize, cols: usize, probability: f64) -> Result<DiGraph> {
    let n = rows * cols;
    let mut builder = GraphBuilder::new(n);
    for r in 0..rows {
        for c in 0..cols {
            let u = r * cols + c;
            if c + 1 < cols {
                builder.add_edge(vid(u), vid(u + 1), probability)?;
            }
            if r + 1 < rows {
                builder.add_edge(vid(u), vid(u + cols), probability)?;
            }
        }
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::reachable_count;

    #[test]
    fn erdos_renyi_is_deterministic_and_valid() {
        let a = erdos_renyi(200, 0.02, 0.1, 7).unwrap();
        let b = erdos_renyi(200, 0.02, 0.1, 7).unwrap();
        assert_eq!(a.num_edges(), b.num_edges());
        assert!(a.validate().is_ok());
        // Expected edge count is p * n * (n-1) ≈ 796; allow generous slack.
        let m = a.num_edges() as f64;
        assert!(m > 500.0 && m < 1200.0, "unexpected edge count {m}");
        assert!(erdos_renyi(10, 1.5, 0.1, 0).is_err());
        assert_eq!(erdos_renyi(0, 0.5, 0.1, 0).unwrap().num_vertices(), 0);
        assert_eq!(erdos_renyi(10, 0.0, 0.1, 0).unwrap().num_edges(), 0);
        assert_eq!(erdos_renyi(5, 1.0, 0.1, 0).unwrap().num_edges(), 20);
    }

    #[test]
    fn gnm_has_exact_edge_count() {
        let g = gnm_random(100, 500, 0.5, 3).unwrap();
        assert_eq!(g.num_edges(), 500);
        assert!(g.validate().is_ok());
        assert!(gnm_random(3, 100, 0.5, 3).is_err());
        // Dense case goes through the shuffle path.
        let dense = gnm_random(20, 300, 0.5, 3).unwrap();
        assert_eq!(dense.num_edges(), 300);
    }

    #[test]
    fn preferential_attachment_has_heavy_tail() {
        let g = preferential_attachment(500, 3, false, 0.1, 11).unwrap();
        assert!(g.validate().is_ok());
        assert!(g.num_edges() >= 3 * 400);
        // The most attractive vertex should collect far more than the
        // average in-degree.
        let max_in = g.vertices().map(|v| g.in_degree(v)).max().unwrap();
        let avg_in = g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(
            max_in as f64 > 4.0 * avg_in,
            "max in-degree {max_in} not heavy-tailed vs avg {avg_in}"
        );
        assert!(preferential_attachment(3, 5, false, 0.1, 0).is_err());
    }

    #[test]
    fn preferential_attachment_bidirectional_roughly_doubles_edges() {
        let g1 = preferential_attachment(200, 2, false, 0.1, 5).unwrap();
        let g2 = preferential_attachment(200, 2, true, 0.1, 5).unwrap();
        assert!(g2.num_edges() > g1.num_edges());
        // Every edge should have its reverse.
        for e in g2.edges() {
            assert!(g2.has_edge(e.target, e.source));
        }
    }

    #[test]
    fn power_law_hits_edge_budget_roughly() {
        let g = power_law_digraph(1000, 5000, 2.3, 200, 0.1, 17).unwrap();
        assert!(g.validate().is_ok());
        let m = g.num_edges() as f64;
        assert!(
            m > 2500.0 && m < 7500.0,
            "edge count {m} far from target 5000"
        );
        assert!(power_law_digraph(100, 500, 0.9, 50, 0.1, 0).is_err());
        assert_eq!(
            power_law_digraph(0, 0, 2.0, 10, 0.1, 0)
                .unwrap()
                .num_vertices(),
            0
        );
    }

    #[test]
    fn watts_strogatz_degree_structure() {
        let g = watts_strogatz(100, 4, 0.1, 0.2, 23).unwrap();
        assert!(g.validate().is_ok());
        // Each vertex issues exactly k out-edges (minus merged duplicates).
        assert!(g.num_edges() <= 400);
        assert!(g.num_edges() > 350);
        assert!(watts_strogatz(10, 10, 0.1, 0.2, 0).is_err());
        assert!(watts_strogatz(10, 2, 1.5, 0.2, 0).is_err());
    }

    #[test]
    fn deterministic_structures() {
        let c = complete(4, 1.0).unwrap();
        assert_eq!(c.num_edges(), 12);

        let s = out_star(5, 1.0).unwrap();
        assert_eq!(s.num_edges(), 4);
        assert_eq!(s.out_degree(VertexId::new(0)), 4);

        let p = path(5, 1.0).unwrap();
        assert_eq!(p.num_edges(), 4);
        assert_eq!(reachable_count(&p, &[VertexId::new(0)]), 5);

        let cy = cycle(5, 1.0).unwrap();
        assert_eq!(cy.num_edges(), 5);
        assert_eq!(reachable_count(&cy, &[VertexId::new(2)]), 5);
        assert_eq!(cycle(1, 1.0).unwrap().num_edges(), 0);

        let t = balanced_tree(2, 3, 1.0).unwrap();
        assert_eq!(t.num_vertices(), 15);
        assert_eq!(t.num_edges(), 14);
        assert_eq!(reachable_count(&t, &[VertexId::new(0)]), 15);
        assert_eq!(balanced_tree(1, 4, 1.0).unwrap().num_vertices(), 5);
        assert_eq!(balanced_tree(0, 4, 1.0).unwrap().num_vertices(), 1);

        let g = grid(3, 4, 1.0).unwrap();
        assert_eq!(g.num_vertices(), 12);
        assert_eq!(g.num_edges(), 3 * 3 + 2 * 4);
        assert_eq!(reachable_count(&g, &[VertexId::new(0)]), 12);
    }

    #[test]
    fn layered_dag_is_acyclic_and_layered() {
        let g = layered_dag(4, 5, 0.5, 1.0, 9).unwrap();
        assert_eq!(g.num_vertices(), 20);
        assert!(crate::traversal::topological_order(&g).is_some());
        // No edges within a layer or skipping layers.
        for e in g.edges() {
            assert_eq!(e.target.index() / 5, e.source.index() / 5 + 1);
        }
        assert!(layered_dag(3, 3, 1.5, 1.0, 0).is_err());
        let full = layered_dag(3, 3, 1.0, 1.0, 0).unwrap();
        assert_eq!(full.num_edges(), 2 * 9);
    }
}
