//! Dense vertex identifiers.
//!
//! Vertices are dense `u32` indices in the range `0..n`. A newtype keeps the
//! public API honest (a vertex id cannot be accidentally swapped with a
//! degree or an edge offset) while compiling down to a plain integer.

use std::fmt;

/// A dense vertex identifier in the range `0..n`.
///
/// `VertexId` is a thin wrapper around `u32`; graphs with more than
/// `u32::MAX` vertices are not supported (the paper's largest dataset,
/// Youtube, has ~1.1M vertices — far below the limit).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VertexId(u32);

impl VertexId {
    /// Sentinel value used by internal algorithms to mean "no vertex".
    ///
    /// The sentinel is `u32::MAX` and therefore can never collide with a
    /// valid vertex of a graph (graphs are capped below `u32::MAX` vertices).
    pub const INVALID: VertexId = VertexId(u32::MAX);

    /// Creates a vertex id from a `usize` index.
    ///
    /// # Panics
    /// Panics if `index` does not fit in a `u32`.
    #[inline]
    pub fn new(index: usize) -> Self {
        debug_assert!(index < u32::MAX as usize, "vertex index out of range");
        VertexId(index as u32)
    }

    /// Creates a vertex id directly from a raw `u32`.
    #[inline]
    pub const fn from_raw(raw: u32) -> Self {
        VertexId(raw)
    }

    /// Returns the id as a `usize` suitable for indexing flat arrays.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Returns `true` if this id is the [`VertexId::INVALID`] sentinel.
    #[inline]
    pub const fn is_invalid(self) -> bool {
        self.0 == u32::MAX
    }
}

impl From<u32> for VertexId {
    #[inline]
    fn from(raw: u32) -> Self {
        VertexId(raw)
    }
}

impl From<VertexId> for u32 {
    #[inline]
    fn from(v: VertexId) -> Self {
        v.0
    }
}

impl From<VertexId> for usize {
    #[inline]
    fn from(v: VertexId) -> Self {
        v.index()
    }
}

impl fmt::Debug for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_invalid() {
            write!(f, "v#invalid")
        } else {
            write!(f, "v{}", self.0)
        }
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Returns an iterator over all vertex ids `0..n`.
///
/// A small convenience used pervasively by the algorithm crates:
///
/// ```
/// use imin_graph::vertex::{vertex_range, VertexId};
/// let ids: Vec<VertexId> = vertex_range(3).collect();
/// assert_eq!(ids, vec![VertexId::new(0), VertexId::new(1), VertexId::new(2)]);
/// ```
pub fn vertex_range(n: usize) -> impl Iterator<Item = VertexId> + Clone {
    (0..n as u32).map(VertexId::from_raw)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_usize() {
        let v = VertexId::new(42);
        assert_eq!(v.index(), 42);
        assert_eq!(v.raw(), 42);
        assert_eq!(usize::from(v), 42);
        assert_eq!(u32::from(v), 42);
    }

    #[test]
    fn invalid_sentinel() {
        assert!(VertexId::INVALID.is_invalid());
        assert!(!VertexId::new(0).is_invalid());
        assert_eq!(format!("{:?}", VertexId::INVALID), "v#invalid");
    }

    #[test]
    fn ordering_matches_raw_value() {
        assert!(VertexId::new(1) < VertexId::new(2));
        assert_eq!(VertexId::new(7), VertexId::from_raw(7));
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{}", VertexId::new(5)), "5");
        assert_eq!(format!("{:?}", VertexId::new(5)), "v5");
    }

    #[test]
    fn vertex_range_yields_dense_ids() {
        let ids: Vec<_> = vertex_range(4).map(|v| v.index()).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        assert_eq!(vertex_range(0).count(), 0);
    }
}
