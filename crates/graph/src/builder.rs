//! Incremental construction of [`DiGraph`]s.

use crate::error::validate_probability;
use crate::{DiGraph, GraphError, Result, VertexId};

/// How the builder treats self loops `(u, u)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SelfLoopPolicy {
    /// Silently drop self loops (the default).
    ///
    /// Self loops never change the expected spread under the IC model — a
    /// vertex cannot re-activate itself — so dropping them is the behaviour
    /// the influence algorithms want.
    #[default]
    Drop,
    /// Keep self loops in the graph.
    Keep,
    /// Return an error when a self loop is added.
    Reject,
}

/// An edge-list accumulator producing a [`DiGraph`].
///
/// The builder accepts edges in any order, grows the vertex set on demand
/// (via [`GraphBuilder::ensure_vertex`] or automatically when
/// [`GraphBuilder::grow_to_fit`] is enabled), merges duplicate edges with the
/// noisy-or rule and applies the configured [`SelfLoopPolicy`].
///
/// ```
/// use imin_graph::{GraphBuilder, VertexId};
/// let mut b = GraphBuilder::new(0).grow_to_fit(true);
/// b.add_edge(VertexId::new(0), VertexId::new(9), 0.4).unwrap();
/// let g = b.build();
/// assert_eq!(g.num_vertices(), 10);
/// assert_eq!(g.num_edges(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    num_vertices: usize,
    edges: Vec<(u32, u32, f64)>,
    self_loops: SelfLoopPolicy,
    grow_to_fit: bool,
    default_probability: f64,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        GraphBuilder {
            num_vertices,
            edges: Vec::new(),
            self_loops: SelfLoopPolicy::default(),
            grow_to_fit: false,
            default_probability: 1.0,
        }
    }

    /// Creates a builder pre-allocating space for `num_edges` edges.
    pub fn with_capacity(num_vertices: usize, num_edges: usize) -> Self {
        let mut b = Self::new(num_vertices);
        b.edges.reserve(num_edges);
        b
    }

    /// Sets the self-loop policy (default: [`SelfLoopPolicy::Drop`]).
    pub fn self_loop_policy(mut self, policy: SelfLoopPolicy) -> Self {
        self.self_loops = policy;
        self
    }

    /// When enabled, vertex ids beyond the current vertex count grow the
    /// graph instead of producing an error (useful for edge-list parsing).
    pub fn grow_to_fit(mut self, enabled: bool) -> Self {
        self.grow_to_fit = enabled;
        self
    }

    /// Sets the probability used by [`GraphBuilder::add_arc`] (edges added
    /// without an explicit probability). Defaults to `1.0`.
    ///
    /// # Errors
    /// Returns an error if `p` is not a finite value in `[0, 1]`.
    pub fn default_probability(mut self, p: f64) -> Result<Self> {
        validate_probability(p)?;
        self.default_probability = p;
        Ok(self)
    }

    /// Number of vertices the built graph will have (so far).
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edge insertions recorded so far (before deduplication).
    pub fn num_recorded_edges(&self) -> usize {
        self.edges.len()
    }

    /// Ensures the graph has at least `n` vertices.
    pub fn ensure_vertex_count(&mut self, n: usize) {
        if n > self.num_vertices {
            self.num_vertices = n;
        }
    }

    /// Ensures vertex `v` exists, growing the vertex set if necessary.
    pub fn ensure_vertex(&mut self, v: VertexId) {
        self.ensure_vertex_count(v.index() + 1);
    }

    fn check_endpoint(&mut self, v: VertexId) -> Result<()> {
        if v.index() < self.num_vertices {
            return Ok(());
        }
        if self.grow_to_fit {
            self.ensure_vertex(v);
            Ok(())
        } else {
            Err(GraphError::VertexOutOfRange {
                vertex: v.index(),
                num_vertices: self.num_vertices,
            })
        }
    }

    /// Adds a directed edge `(u, v)` with propagation probability `p`.
    ///
    /// # Errors
    /// Returns an error if an endpoint is out of range (and growing is
    /// disabled), the probability is invalid, or the edge is a self loop and
    /// the policy is [`SelfLoopPolicy::Reject`].
    pub fn add_edge(&mut self, u: VertexId, v: VertexId, p: f64) -> Result<()> {
        validate_probability(p)?;
        self.check_endpoint(u)?;
        self.check_endpoint(v)?;
        if u == v {
            match self.self_loops {
                SelfLoopPolicy::Drop => return Ok(()),
                SelfLoopPolicy::Reject => return Err(GraphError::SelfLoop { vertex: u.index() }),
                SelfLoopPolicy::Keep => {}
            }
        }
        self.edges.push((u.raw(), v.raw(), p));
        Ok(())
    }

    /// Adds a directed edge with the builder's default probability.
    pub fn add_arc(&mut self, u: VertexId, v: VertexId) -> Result<()> {
        self.add_edge(u, v, self.default_probability)
    }

    /// Adds both `(u, v)` and `(v, u)` with probability `p` — the paper
    /// treats undirected datasets (Facebook, DBLP, Youtube) as bidirectional
    /// edge pairs (§VI-A).
    pub fn add_undirected_edge(&mut self, u: VertexId, v: VertexId, p: f64) -> Result<()> {
        self.add_edge(u, v, p)?;
        if u != v {
            self.add_edge(v, u, p)?;
        }
        Ok(())
    }

    /// Adds every edge from an iterator of `(source, target, probability)`.
    pub fn extend_edges(
        &mut self,
        edges: impl IntoIterator<Item = (VertexId, VertexId, f64)>,
    ) -> Result<()> {
        for (u, v, p) in edges {
            self.add_edge(u, v, p)?;
        }
        Ok(())
    }

    /// Finalises the builder into a [`DiGraph`].
    pub fn build(self) -> DiGraph {
        DiGraph::from_validated_triples(self.num_vertices, self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vid(i: usize) -> VertexId {
        VertexId::new(i)
    }

    #[test]
    fn basic_build() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(vid(0), vid(1), 0.5).unwrap();
        b.add_edge(vid(1), vid(2), 0.25).unwrap();
        let g = b.build();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn out_of_range_rejected_without_grow() {
        let mut b = GraphBuilder::new(2);
        assert!(b.add_edge(vid(0), vid(5), 0.5).is_err());
        assert!(b.add_edge(vid(5), vid(0), 0.5).is_err());
    }

    #[test]
    fn grow_to_fit_expands_vertex_set() {
        let mut b = GraphBuilder::new(0).grow_to_fit(true);
        b.add_edge(vid(3), vid(7), 1.0).unwrap();
        let g = b.build();
        assert_eq!(g.num_vertices(), 8);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn self_loop_policies() {
        let mut drop = GraphBuilder::new(2);
        drop.add_edge(vid(1), vid(1), 0.9).unwrap();
        assert_eq!(drop.build().num_edges(), 0);

        let mut keep = GraphBuilder::new(2).self_loop_policy(SelfLoopPolicy::Keep);
        keep.add_edge(vid(1), vid(1), 0.9).unwrap();
        assert_eq!(keep.build().num_edges(), 1);

        let mut reject = GraphBuilder::new(2).self_loop_policy(SelfLoopPolicy::Reject);
        assert!(reject.add_edge(vid(1), vid(1), 0.9).is_err());
    }

    #[test]
    fn undirected_edges_become_two_arcs() {
        let mut b = GraphBuilder::new(2);
        b.add_undirected_edge(vid(0), vid(1), 0.4).unwrap();
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edge_probability(vid(0), vid(1)), Some(0.4));
        assert_eq!(g.edge_probability(vid(1), vid(0)), Some(0.4));
    }

    #[test]
    fn undirected_self_loop_is_added_once_when_kept() {
        let mut b = GraphBuilder::new(2).self_loop_policy(SelfLoopPolicy::Keep);
        b.add_undirected_edge(vid(1), vid(1), 0.4).unwrap();
        assert_eq!(b.build().num_edges(), 1);
    }

    #[test]
    fn default_probability_applies_to_add_arc() {
        let mut b = GraphBuilder::new(2).default_probability(0.1).unwrap();
        b.add_arc(vid(0), vid(1)).unwrap();
        let g = b.build();
        assert_eq!(g.edge_probability(vid(0), vid(1)), Some(0.1));
        assert!(GraphBuilder::new(2).default_probability(1.5).is_err());
    }

    #[test]
    fn duplicate_edges_merge_in_build() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(vid(0), vid(1), 0.5).unwrap();
        b.add_edge(vid(0), vid(1), 0.5).unwrap();
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert!((g.edge_probability(vid(0), vid(1)).unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn extend_edges_and_counters() {
        let mut b = GraphBuilder::with_capacity(3, 2);
        b.extend_edges(vec![(vid(0), vid(1), 0.2), (vid(1), vid(2), 0.3)])
            .unwrap();
        assert_eq!(b.num_recorded_edges(), 2);
        assert_eq!(b.num_vertices(), 3);
        assert_eq!(b.build().num_edges(), 2);
    }

    #[test]
    fn ensure_vertex_grows_isolated_vertices() {
        let mut b = GraphBuilder::new(1);
        b.ensure_vertex(vid(4));
        let g = b.build();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
    }
}
