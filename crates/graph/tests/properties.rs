//! Property-based tests for the graph substrate.

use imin_graph::generators;
use imin_graph::subgraph::{remove_vertices, VertexMask};
use imin_graph::traversal::{reachable_count, reachable_count_blocked};
use imin_graph::{DiGraph, GraphBuilder, VertexId};
use proptest::prelude::*;

/// Strategy producing an arbitrary small directed graph together with its
/// raw edge list.
fn arb_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = (usize, Vec<(u32, u32, f64)>)> {
    (2usize..=max_n).prop_flat_map(move |n| {
        let edge = (0..n as u32, 0..n as u32, 0.0f64..=1.0f64);
        (Just(n), proptest::collection::vec(edge, 0..=max_m))
    })
}

fn build(n: usize, edges: &[(u32, u32, f64)]) -> DiGraph {
    let mut b = GraphBuilder::new(n);
    for &(u, v, p) in edges {
        b.add_edge(VertexId::from_raw(u), VertexId::from_raw(v), p)
            .unwrap();
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every graph produced by the builder satisfies the CSR invariants.
    #[test]
    fn builder_output_is_always_valid((n, edges) in arb_graph(24, 80)) {
        let g = build(n, &edges);
        prop_assert!(g.validate().is_ok());
        prop_assert_eq!(g.num_vertices(), n);
        // No self loops (the default policy drops them) and no duplicates.
        for e in g.edges() {
            prop_assert_ne!(e.source, e.target);
        }
    }

    /// The in-adjacency is the exact transpose of the out-adjacency.
    #[test]
    fn in_and_out_views_agree((n, edges) in arb_graph(20, 60)) {
        let g = build(n, &edges);
        let mut out_pairs: Vec<(u32, u32)> = g.edges().map(|e| (e.source.raw(), e.target.raw())).collect();
        let mut in_pairs: Vec<(u32, u32)> = g
            .vertices()
            .flat_map(|v| g.in_edges(v).map(move |(s, _)| (s.raw(), v.raw())))
            .collect();
        out_pairs.sort_unstable();
        in_pairs.sort_unstable();
        prop_assert_eq!(out_pairs, in_pairs);
        // Degree sums both equal m.
        let sum_out: usize = g.vertices().map(|v| g.out_degree(v)).sum();
        let sum_in: usize = g.vertices().map(|v| g.in_degree(v)).sum();
        prop_assert_eq!(sum_out, g.num_edges());
        prop_assert_eq!(sum_in, g.num_edges());
    }

    /// Reversing twice is the identity (same edges and probabilities).
    #[test]
    fn double_reverse_is_identity((n, edges) in arb_graph(16, 50)) {
        let g = build(n, &edges);
        let rr = g.reverse().reverse();
        prop_assert_eq!(g.num_edges(), rr.num_edges());
        for e in g.edges() {
            prop_assert_eq!(rr.edge_probability(e.source, e.target), Some(e.probability));
        }
    }

    /// Removing vertices can never increase reachability from any source.
    #[test]
    fn blocking_is_monotone((n, edges) in arb_graph(16, 60), src in 0u32..16, blocked in 0u32..16) {
        let g = build(n, &edges);
        let src = VertexId::from_raw(src % n as u32);
        let blocked_v = VertexId::from_raw(blocked % n as u32);
        let base = reachable_count(&g, &[src]);
        let mut mask = vec![false; n];
        mask[blocked_v.index()] = true;
        let after = reachable_count_blocked(&g, &[src], &mask);
        prop_assert!(after <= base);
        // Blocking the source empties the reachable set.
        let mut src_mask = vec![false; n];
        src_mask[src.index()] = true;
        prop_assert_eq!(reachable_count_blocked(&g, &[src], &src_mask), 0);
    }

    /// Traversal with a blocked mask equals traversal on the materialised
    /// induced subgraph G[V \ B].
    #[test]
    fn masked_traversal_equals_induced_subgraph((n, edges) in arb_graph(14, 50), src in 0u32..14, seed in 0u64..1000) {
        let g = build(n, &edges);
        let src = VertexId::from_raw(src % n as u32);
        // Pick a pseudo-random blocker set not containing the source.
        let mut mask = VertexMask::new(n);
        let mut x = seed;
        for v in g.vertices() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            if v != src && (x >> 33) % 3 == 0 {
                mask.insert(v);
            }
        }
        let masked = reachable_count_blocked(&g, &[src], mask.as_slice());
        let sub = remove_vertices(&g, &mask).unwrap();
        let projected_src = sub.project(src).unwrap();
        let direct = reachable_count(&sub.graph, &[projected_src]);
        prop_assert_eq!(masked, direct);
    }

    /// Edge-list round trip preserves the graph exactly.
    #[test]
    fn edgelist_roundtrip((n, edges) in arb_graph(16, 40)) {
        let g = build(n, &edges);
        let mut buf = Vec::new();
        imin_graph::edgelist::write_edge_list(&g, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let opts = imin_graph::edgelist::EdgeListOptions { compact_ids: false, ..Default::default() };
        let loaded = imin_graph::edgelist::parse_edge_list(&text, &opts).unwrap();
        prop_assert_eq!(loaded.graph.num_edges(), g.num_edges());
        for e in g.edges() {
            let p = loaded.graph.edge_probability(e.source, e.target);
            prop_assert!(p.is_some());
            prop_assert!((p.unwrap() - e.probability).abs() < 1e-12);
        }
    }

    /// Generators always produce graphs that satisfy the CSR invariants.
    #[test]
    fn generators_produce_valid_graphs(seed in 0u64..200, n in 2usize..60) {
        let er = generators::erdos_renyi(n, 0.1, 0.5, seed).unwrap();
        prop_assert!(er.validate().is_ok());
        let pa = generators::preferential_attachment(n, 2.min(n - 1), false, 0.5, seed).unwrap();
        prop_assert!(pa.validate().is_ok());
        let pl = generators::power_law_digraph(n, n * 2, 2.2, n, 0.5, seed).unwrap();
        prop_assert!(pl.validate().is_ok());
    }
}
