//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] macro (with `#![proptest_config(..)]`), range and tuple
//! strategies, [`Just`], [`Strategy::prop_flat_map`], [`collection::vec`]
//! and the `prop_assert*` macros. Instead of proptest's random seeds with
//! failure persistence and shrinking, every test runs a **deterministic**
//! sequence of cases derived from the case index — reproducible across runs
//! and machines, which suits a CI-verified reproduction repo better than
//! fresh entropy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// The RNG handed to strategies.
pub type TestRng = SmallRng;

/// Creates the deterministic RNG for one test case.
pub fn new_rng(case: u32) -> TestRng {
    TestRng::seed_from_u64(0x00C0_FFEE_5EED ^ 0x9E3779B97F4A7C15u64.wrapping_mul(case as u64 + 1))
}

/// Per-test configuration. Only the number of cases is supported.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values of an associated type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Builds a dependent strategy from each generated value (proptest's
    /// monadic bind).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Maps generated values through a function.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy producing a fixed value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// An inclusive range of collection sizes.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for vectors with element strategy `S` and a size range.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a strategy producing `Vec`s of values from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};
}

/// Declares property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::new_rng(__case);
                    $( let $pat = $crate::Strategy::generate(&($strat), &mut __rng); )+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair(max: usize) -> impl Strategy<Value = (usize, Vec<u32>)> {
        (1usize..=max).prop_flat_map(move |n| (Just(n), collection::vec(0..n as u32 * 10, 0..=n)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in 0u32..=4, f in 0.25f64..=0.5f64) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!((0.25..=0.5).contains(&f));
        }

        #[test]
        fn flat_map_links_sizes((n, items) in pair(8)) {
            prop_assert!((1..=8).contains(&n));
            prop_assert!(items.len() <= n);
            for &it in &items {
                prop_assert!(it < n as u32 * 10);
            }
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a: Vec<u64> = (0..5)
            .map(|c| {
                let mut rng = crate::new_rng(c);
                (0u64..100).generate(&mut rng)
            })
            .collect();
        let b: Vec<u64> = (0..5)
            .map(|c| {
                let mut rng = crate::new_rng(c);
                (0u64..100).generate(&mut rng)
            })
            .collect();
        assert_eq!(a, b);
    }
}
