//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no access to a crates.io
//! mirror, so the handful of `rand 0.8` APIs the workspace actually uses are
//! reimplemented here behind the same names and signatures:
//!
//! * [`RngCore`], [`SeedableRng`] and the [`Rng`] extension trait with
//!   `gen_bool` / `gen_range` over integer and float ranges;
//! * [`rngs::SmallRng`] and [`rngs::StdRng`], both deterministic
//!   xoshiro256++ generators seeded via SplitMix64 (`seed_from_u64`);
//! * [`seq::SliceRandom`] with Fisher–Yates `shuffle` and `choose`.
//!
//! Streams are deterministic for a fixed seed (the reproducibility contract
//! every algorithm in the workspace relies on) but do **not** match the bit
//! streams of the real `rand` crate; nothing in the workspace depends on the
//! latter.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of random `u64`s.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be instantiated from a fixed-size seed or a `u64`.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` by expanding it with SplitMix64
    /// (the same construction the real crate documents).
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64(state);
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64, used only for seed expansion.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// User-facing random-value methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool requires p in [0, 1], got {p}"
        );
        // 53 uniform mantissa bits in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Returns a value uniformly distributed over `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can be sampled uniformly. Implemented for half-open and
/// inclusive ranges over the integer types and `f64`.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, span)` via the widening-multiply method (no
/// modulo bias worth caring about at 64-bit width).
fn uniform_below(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full 64-bit domain.
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64, isize);

/// 53-bit uniform float in `[0, 1)`.
fn unit_f64(rng: &mut (impl RngCore + ?Sized)) -> f64 {
    ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let v = self.start + unit_f64(rng) * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample from empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        (lo + unit * (hi - lo)).clamp(lo, hi)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ by Blackman & Vigna: fast, 256 bits of state, excellent
    /// statistical quality for simulation workloads.
    #[derive(Clone, Debug)]
    pub struct Xoshiro256PlusPlus {
        s: [u64; 4],
    }

    impl RngCore for Xoshiro256PlusPlus {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for Xoshiro256PlusPlus {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            if s == [0; 4] {
                // The all-zero state is a fixed point; displace it.
                s = [
                    0x9E3779B97F4A7C15,
                    0x6A09E667F3BCC909,
                    0xBB67AE8584CAA73B,
                    0x3C6EF372FE94F82B,
                ];
            }
            Xoshiro256PlusPlus { s }
        }
    }

    /// The small, fast generator (xoshiro256++ here, as in real `rand` on
    /// 64-bit targets).
    pub type SmallRng = Xoshiro256PlusPlus;

    /// The "standard" generator. The real crate uses ChaCha12; for this
    /// offline stand-in the same xoshiro256++ suffices — nothing in the
    /// workspace needs cryptographic strength.
    pub type StdRng = Xoshiro256PlusPlus;
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension methods for slices: random shuffling and element choice.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_bool_frequency_is_calibrated() {
        let mut rng = SmallRng::seed_from_u64(7);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let freq = hits as f64 / 100_000.0;
        assert!((freq - 0.3).abs() < 0.01, "frequency {freq}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v: usize = rng.gen_range(0..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..10 appear");
        for _ in 0..1_000 {
            let f = rng.gen_range(0.25..0.5);
            assert!((0.25..0.5).contains(&f));
            let g = rng.gen_range(0.25..=0.5);
            assert!((0.25..=0.5).contains(&g));
            let i = rng.gen_range(3..=5);
            assert!((3..=5).contains(&i));
        }
    }

    #[test]
    fn dyn_rng_core_supports_rng_methods() {
        let mut rng = SmallRng::seed_from_u64(1);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let v = (*dyn_rng).gen_range(0..5usize);
        assert!(v < 5);
        let _ = (*dyn_rng).gen_bool(0.5);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
