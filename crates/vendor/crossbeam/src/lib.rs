//! Offline stand-in for the [`crossbeam`](https://crates.io/crates/crossbeam)
//! crate.
//!
//! The workspace only uses `crossbeam::scope` for structured fork–join
//! parallelism. Since Rust 1.63 the standard library provides the same
//! capability as [`std::thread::scope`]; this crate wraps it behind
//! crossbeam's signature (a closure receiving `&Scope`, spawned closures
//! receiving `&Scope` again for nested spawns, and `join` returning
//! [`std::thread::Result`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A scope for spawning threads that borrow from the enclosing stack frame.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// A handle to a scoped thread, joinable before the scope ends.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope again so it
    /// can spawn further threads (unused by this workspace, kept for API
    /// compatibility).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || f(&Scope { inner })),
        }
    }
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Waits for the thread to finish, returning its result (or the panic
    /// payload if it panicked).
    pub fn join(self) -> std::thread::Result<T> {
        self.inner.join()
    }
}

/// Creates a scope in which threads borrowing local state can be spawned.
/// Returns `Ok` with the closure's value once every spawned thread has been
/// joined.
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawns_work() {
        let v = scope(|s| {
            let h = s.spawn(|s2| {
                let inner = s2.spawn(|_| 21);
                inner.join().unwrap() * 2
            });
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(v, 42);
    }
}
