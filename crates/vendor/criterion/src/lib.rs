//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Implements the subset of the criterion API the workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros — with a simple
//! wall-clock measurement loop instead of criterion's statistical machinery:
//! each benchmark is warmed up once, an iteration count is calibrated to a
//! small time budget, several samples are taken and the per-iteration mean
//! and minimum are printed.
//!
//! Command-line behaviour: the first free (non-flag) argument is treated as
//! a substring filter on benchmark ids, so `cargo bench -- dominator` runs
//! only matching benchmarks. The `IMIN_BENCH_BUDGET_MS` environment variable
//! overrides the per-sample time budget (default 200 ms).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point of the harness; hands out benchmark groups.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Reads the benchmark filter from the command line (first free
    /// argument).
    pub fn configure_from_args(mut self) -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && !a.is_empty());
        self.filter = filter;
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Runs a standalone benchmark (group-less).
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.filter.as_deref(), &id.to_string(), 10, &mut f);
        self
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark (criterion's knob is
    /// kept, mapped onto this harness's sample loop; clamped to at least 3).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Benchmarks a closure under `id`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(
            self.criterion.filter.as_deref(),
            &full,
            self.sample_size,
            &mut f,
        );
        self
    }

    /// Benchmarks a closure that receives a shared input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(
            self.criterion.filter.as_deref(),
            &full,
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (printing is incremental, so this is a no-op kept for
    /// API compatibility).
    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter, rendered as
/// `name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayable parameter.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Creates an id from a parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs the measured loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f`, running it `self.iters` times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn budget() -> Duration {
    let ms = std::env::var("IMIN_BENCH_BUDGET_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(200);
    Duration::from_millis(ms.max(1))
}

fn run_one<F: FnMut(&mut Bencher)>(filter: Option<&str>, id: &str, samples: usize, f: &mut F) {
    if let Some(filter) = filter {
        if !id.contains(filter) {
            return;
        }
    }
    // Warm-up and calibration: one iteration to estimate the cost, then an
    // iteration count that fits the per-sample budget.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let budget = budget();
    let iters = (budget.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut means = Vec::with_capacity(samples);
    for _ in 0..samples {
        bencher.iters = iters;
        f(&mut bencher);
        means.push(bencher.elapsed.as_secs_f64() / iters as f64);
    }
    means.sort_by(|a, b| a.partial_cmp(b).expect("benchmark times are finite"));
    let min = means[0];
    let median = means[means.len() / 2];
    let mean = means.iter().sum::<f64>() / means.len() as f64;
    println!(
        "{id:<56} time: [min {} median {} mean {}]  ({iters} iters x {samples} samples)",
        fmt_time(min),
        fmt_time(median),
        fmt_time(mean)
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Defines a function running a list of benchmark functions, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Defines `main` for a benchmark binary, mirroring criterion's macro of the
/// same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_and_respect_filter() {
        std::env::set_var("IMIN_BENCH_BUDGET_MS", "1");
        let mut c = Criterion::default();
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("unit");
            g.sample_size(3);
            g.bench_function("touch", |b| {
                b.iter(|| {
                    ran += 1;
                    black_box(1 + 1)
                })
            });
            g.finish();
        }
        assert!(ran > 0);

        let mut filtered = Criterion {
            filter: Some("no-such-bench".into()),
        };
        let mut ran_filtered = false;
        let mut g = filtered.benchmark_group("unit");
        g.bench_function("skipped", |b| {
            b.iter(|| {
                ran_filtered = true;
            })
        });
        g.finish();
        assert!(!ran_filtered, "filtered-out benchmarks must not run");
    }

    #[test]
    fn benchmark_id_renders_name_and_parameter() {
        assert_eq!(BenchmarkId::new("lt", 500).to_string(), "lt/500");
        assert_eq!(BenchmarkId::from_parameter("wc").to_string(), "wc");
    }
}
