//! Regenerates Figure 5: expected spread of GreedyReplace as the number of
//! sampled graphs θ varies (TR model, b = 20, 10 seeds).
use imin_bench::BenchSettings;
fn main() {
    let settings = BenchSettings::from_env();
    let thetas = imin_bench::experiments::default_thetas(&settings);
    println!("== Figure 5: spread vs number of sampled graphs θ ==");
    imin_bench::experiments::theta_sweep(&settings, &thetas, 20).emit("fig5_theta_effectiveness");
}
