//! Regenerates Table III: blockers and expected spreads of Greedy,
//! OutNeighbors and GreedyReplace on the Figure-1 toy graph.
fn main() {
    println!("== Table III: toy graph of Figure 1 ==");
    imin_bench::experiments::table3_toy().emit("table3_toy");
}
