//! Regenerates Table VI: Exact vs GreedyReplace on ~100-vertex extracts of
//! EmailCore under the Weighted-Cascade (WC) model, budgets 1..=4.
use imin_bench::BenchSettings;
use imin_diffusion::ProbabilityModel;
fn main() {
    let settings = BenchSettings::from_env();
    println!("== Table VI: Exact vs GreedyReplace (WC model) ==");
    imin_bench::experiments::exact_vs_gr(ProbabilityModel::WeightedCascade, &settings)
        .emit("table6_exact_wc");
}
