//! PR 5 performance trajectory: snapshot warm-starts versus pool rebuilds,
//! and incremental θ-growth versus fresh builds, at θ = 10 000 on the
//! 50 000-vertex WC benchmark graph of `bench_pr2`/`bench_pr3`.
//!
//! The story in four acts:
//!
//! * `pool_build_cold_secs` / `pool_build_secs` — what a restarted
//!   `imin-serve` used to pay on every boot: resampling the full θ pool
//!   (`POOL 10000 7`), measured once on first-touch memory and once
//!   steady-state (pages recycled by the allocator).
//! * `snapshot_save_secs` / `snapshot_restore_*` — paying that cost once:
//!   `SAVE` streams the arenas to disk, `RESTORE` bulk-loads them back;
//!   `restore_speedup_vs_rebuild` (steady-state restore vs steady-state
//!   rebuild — like-for-like) is the acceptance headline (≥ 25×), with
//!   query answers asserted **byte-identical** before save and after
//!   restore.
//! * `extend` — incremental growth: a θ=1k pool extended to 10k via the
//!   per-sample indexed RNG streams, proven bit-identical (arena digest and
//!   blocker selections) to the fresh 10k build, with the timing split
//!   showing extension costs only the missing samples.
//!
//! Cold and steady-state are reported separately because first-touch of
//! multi-GB allocations is dominated by memory *provisioning* (page zeroing
//! and, on lazily-backed VMs, hypervisor faulting — wildly erratic on such
//! hosts), which both a rebuild and a restore pay identically and which a
//! long-running production server pays exactly once. The steady-state
//! numbers measure the algorithms; the cold numbers measure the machine.
//! Engines are dropped before their successors build, so peak memory stays
//! at ~one pool (≈4.6 GB at this scale) plus the page-cached snapshot.
//!
//! Emits `BENCH_PR5.json` in the repository root (override the directory
//! with `IMIN_BENCH_OUT`; the scratch snapshot goes to the system temp dir
//! or `IMIN_BENCH_SNAPSHOT`). Run with:
//! `cargo run --release -p imin-bench --bin bench_pr5`

use imin_core::snapshot::pool_digest;
use imin_core::SamplePool;
use imin_diffusion::ProbabilityModel;
use imin_engine::{Engine, PoolAction, Query, QueryAlgorithm, QueryResult};
use imin_graph::{generators, VertexId};
use std::io::Write;
use std::time::Instant;

const THETA: usize = 10_000;
const BASE_THETA: usize = 1_000;
const POOL_SEED: u64 = 7;
const BUDGET: usize = 10;

fn answer_key(r: &QueryResult) -> (Vec<u32>, Option<u64>) {
    (
        r.blockers.iter().map(|b| b.raw()).collect(),
        r.estimated_spread.map(f64::to_bits),
    )
}

fn main() {
    let n = 50_000usize;
    eprintln!("generating {n}-vertex preferential-attachment topology …");
    let topology =
        generators::preferential_attachment(n, 4, true, 1.0, 20230227).expect("generator");
    let graph = ProbabilityModel::WeightedCascade
        .apply(&topology)
        .expect("WC probabilities");
    let mut hubs: Vec<VertexId> = graph.vertices().collect();
    hubs.sort_by_key(|&v| std::cmp::Reverse(graph.out_degree(v)));
    let source = hubs[0];
    eprintln!(
        "graph ready: n={n}, m={}, hub source={source} (out-degree {})",
        graph.num_edges(),
        graph.out_degree(source)
    );

    let snapshot_path = std::env::var("IMIN_BENCH_SNAPSHOT")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| std::env::temp_dir().join("bench_pr5_wc50k.iminsnap"));
    let hot_query = Query {
        seeds: vec![source],
        budget: BUDGET,
        algorithm: QueryAlgorithm::AdvancedGreedy,
        intervention: imin_core::Intervention::BlockVertices,
    };

    // ---- Act 1: the cold rebuild a restarted server used to pay ----------
    let mut cold = Engine::new().with_threads(1);
    cold.load_graph(graph.clone(), "pa-50k/WC".into());
    let (info, action) = cold.ensure_pool(THETA, POOL_SEED).expect("pool build");
    assert_eq!(action, PoolAction::Built);
    let pool_build_cold_secs = info.build_time.as_secs_f64();
    let pool_bytes = info.memory_bytes;
    eprintln!(
        "pool build, cold (θ={THETA}, 1 thread): {pool_build_cold_secs:.3}s, {pool_bytes} bytes"
    );
    let before = cold.query(&hot_query).expect("query before save");
    let query_secs = before.elapsed.as_secs_f64();
    eprintln!(
        "query before save: {query_secs:.3}s, spread {:.1}",
        before.estimated_spread.unwrap_or(f64::NAN)
    );
    let fresh_digest = pool_digest(cold.pool().expect("resident pool"));

    // ---- Act 2: SAVE, "restart", RESTORE ----------------------------------
    let start = Instant::now();
    let summary = cold.save_snapshot(&snapshot_path).expect("save snapshot");
    let snapshot_save_secs = start.elapsed().as_secs_f64();
    eprintln!(
        "snapshot save: {snapshot_save_secs:.3}s, {} bytes -> {}",
        summary.bytes_written,
        snapshot_path.display()
    );
    drop(cold); // the "restart": the resident pool is gone

    // Let the save's writeback drain before timing the restore — the
    // restore should measure the RESTORE path (page-cache read + bulk
    // load), not the tail of the previous SAVE's 4 GB flush hogging the
    // disk.
    let _ = std::process::Command::new("sync").status();

    let mut warm = Engine::new().with_threads(1);
    let info = warm
        .restore_snapshot(&snapshot_path)
        .expect("restore snapshot");
    let snapshot_restore_first_secs = info.build_time.as_secs_f64();
    eprintln!("snapshot restore, first: {snapshot_restore_first_secs:.3}s");
    assert_eq!(
        pool_digest(warm.pool().expect("restored pool")),
        fresh_digest,
        "restored arenas must be byte-identical"
    );
    let after = warm.query(&hot_query).expect("query after restore");
    assert!(!after.from_cache);
    assert_eq!(
        answer_key(&before),
        answer_key(&after),
        "restored engine must answer byte-identically"
    );
    eprintln!("restored query answer is byte-identical to the pre-save answer");
    drop(warm);

    // Steady state: the pool pages just freed are recycled by the next
    // restore and the snapshot sits in the page cache — the situation a
    // production host is in from its second restart onward (and the only
    // regime where a lazily-backed VM measures the software instead of the
    // hypervisor's first-touch page provisioning). Minimum of three runs to
    // shed scheduler/hypervisor noise.
    let mut snapshot_restore_secs = f64::INFINITY;
    for round in 0..3 {
        let mut warm2 = Engine::new().with_threads(1);
        let info = warm2
            .restore_snapshot(&snapshot_path)
            .expect("steady-state restore");
        let secs = info.build_time.as_secs_f64();
        eprintln!("snapshot restore, steady-state round {round}: {secs:.3}s");
        snapshot_restore_secs = snapshot_restore_secs.min(secs);
        assert_eq!(
            pool_digest(warm2.pool().expect("restored pool")),
            fresh_digest
        );
    }
    eprintln!("snapshot restore, steady-state (min of 3): {snapshot_restore_secs:.3}s");

    // The like-for-like rebuild denominator: steady-state POOL builds in
    // the same memory regime as the steady-state restore above (minimum of
    // two, mirroring the restore's noise treatment — a *minimum* build
    // biases the headline ratio conservatively downward).
    let mut pool_build_secs = f64::INFINITY;
    for round in 0..2 {
        let mut rebuilt = Engine::new().with_threads(1);
        rebuilt.load_graph(graph.clone(), "pa-50k/WC".into());
        let (info, _) = rebuilt.ensure_pool(THETA, POOL_SEED).expect("warm rebuild");
        let secs = info.build_time.as_secs_f64();
        eprintln!("pool build, steady-state round {round} (θ={THETA}, 1 thread): {secs:.3}s");
        pool_build_secs = pool_build_secs.min(secs);
        assert_eq!(
            pool_digest(rebuilt.pool().expect("rebuilt pool")),
            fresh_digest
        );
    }
    let restore_speedup = pool_build_secs / snapshot_restore_secs;
    let restore_speedup_vs_cold = pool_build_cold_secs / snapshot_restore_secs;
    let cold_restore_speedup_vs_cold = pool_build_cold_secs / snapshot_restore_first_secs;
    eprintln!(
        "RESTORE vs POOL rebuild: steady/steady {restore_speedup:.1}x, \
         steady restore vs cold rebuild {restore_speedup_vs_cold:.1}x, \
         cold/cold {cold_restore_speedup_vs_cold:.1}x"
    );

    // ---- Act 3: incremental θ-growth vs a fresh build ---------------------
    let start = Instant::now();
    let mut pool =
        SamplePool::build_with_threads(&graph, BASE_THETA, POOL_SEED, 1).expect("base pool");
    let base_build_secs = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let added = pool.extend_to(&graph, THETA, 1).expect("extend");
    let extend_secs = start.elapsed().as_secs_f64();
    assert_eq!(added, THETA - BASE_THETA);
    eprintln!(
        "θ growth {BASE_THETA} -> {THETA}: base {base_build_secs:.3}s + extend {extend_secs:.3}s \
         (fresh build of the same pool: {pool_build_secs:.3}s)"
    );
    assert_eq!(
        pool_digest(&pool),
        fresh_digest,
        "extended pool must be bit-identical to the fresh θ={THETA} build"
    );
    let extended_selection = imin_core::advanced_greedy::advanced_greedy_with_pool(
        &pool,
        &[source],
        &vec![false; n],
        BUDGET,
        1,
    )
    .expect("query on the extended pool");
    assert_eq!(
        extended_selection.blockers, before.blockers,
        "extended pool must select the exact same blockers"
    );
    assert_eq!(
        extended_selection.estimated_spread.map(f64::to_bits),
        before.estimated_spread.map(f64::to_bits)
    );
    eprintln!("extended pool selections match the fresh pool bit-for-bit");
    drop(pool);
    let _ = std::fs::remove_file(&snapshot_path);

    // ---- Emit BENCH_PR5.json ----------------------------------------------
    let out_dir = std::env::var("IMIN_BENCH_OUT").unwrap_or_else(|_| ".".into());
    let path = std::path::Path::new(&out_dir).join("BENCH_PR5.json");
    let blockers = before
        .blockers
        .iter()
        .map(|b| b.raw().to_string())
        .collect::<Vec<_>>()
        .join(",");
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"pr\": 5,\n");
    json.push_str("  \"benchmark\": \"pool_snapshots\",\n");
    json.push_str("  \"description\": \"versioned pool snapshots (SAVE/RESTORE warm-starts) and incremental theta-growth vs from-scratch pool rebuilds (queries: AdvancedGreedy, hub seed)\",\n");
    json.push_str(&format!(
        "  \"graph\": {{ \"generator\": \"preferential_attachment\", \"model\": \"WC\", \"vertices\": {n}, \"edges\": {} }},\n",
        graph.num_edges()
    ));
    json.push_str(&format!(
        "  \"theta\": {THETA},\n  \"budget\": {BUDGET},\n  \"threads\": 1,\n"
    ));
    json.push_str(&format!(
        "  \"pool_build_cold_secs\": {pool_build_cold_secs:.6},\n"
    ));
    json.push_str(&format!("  \"pool_build_secs\": {pool_build_secs:.6},\n"));
    json.push_str(&format!("  \"query_secs\": {query_secs:.6},\n"));
    json.push_str(&format!(
        "  \"snapshot_bytes\": {},\n  \"snapshot_save_secs\": {snapshot_save_secs:.6},\n",
        summary.bytes_written
    ));
    json.push_str(&format!(
        "  \"snapshot_restore_first_secs\": {snapshot_restore_first_secs:.6},\n"
    ));
    json.push_str(&format!(
        "  \"snapshot_restore_secs\": {snapshot_restore_secs:.6},\n"
    ));
    json.push_str(&format!(
        "  \"restore_speedup_vs_rebuild\": {restore_speedup:.2},\n"
    ));
    json.push_str(&format!(
        "  \"restore_speedup_vs_cold_rebuild\": {restore_speedup_vs_cold:.2},\n"
    ));
    json.push_str(&format!(
        "  \"cold_restore_speedup_vs_cold_rebuild\": {cold_restore_speedup_vs_cold:.2},\n"
    ));
    json.push_str(
        "  \"methodology\": \"cold = first-touch memory (dominated by page provisioning; on lazily-backed VMs by erratic hypervisor faulting); steady-state = recycled pages + warm page cache, the regime of a long-running host and the like-for-like software comparison. restore_speedup_vs_rebuild = pool_build_secs / snapshot_restore_secs, both steady-state, single thread, min over repeat runs on both sides. restore_speedup_vs_cold_rebuild is the operator-facing restart scenario: a restarted process either resamples from scratch (cold rebuild) or RESTOREs on a warm host.\",\n",
    );
    json.push_str(&format!(
        "  \"restored_answers_byte_identical\": true,\n  \"blockers\": \"{blockers}\",\n"
    ));
    json.push_str("  \"extend\": {\n");
    json.push_str(&format!(
        "    \"base_theta\": {BASE_THETA},\n    \"base_build_secs\": {base_build_secs:.6},\n"
    ));
    json.push_str(&format!(
        "    \"extend_secs\": {extend_secs:.6},\n    \"extend_total_secs\": {:.6},\n",
        base_build_secs + extend_secs
    ));
    json.push_str(&format!(
        "    \"fresh_build_secs\": {pool_build_secs:.6},\n"
    ));
    json.push_str("    \"bit_identical_to_fresh\": true,\n");
    json.push_str("    \"identical_blocker_selections\": true\n");
    json.push_str("  }\n}\n");
    let mut file = std::fs::File::create(&path).expect("create BENCH_PR5.json");
    file.write_all(json.as_bytes())
        .expect("write BENCH_PR5.json");
    println!("wrote {}", path.display());

    // Regression canary: the steady-state ratio must never collapse. The
    // absolute value is hardware-dependent — this host's sampling speed and
    // memory bandwidth fluctuate by 2-4x between runs (see `methodology`) —
    // so the hard floor is set where only a genuine restore-path regression
    // can trip it; the recorded JSON carries the full picture.
    assert!(
        restore_speedup >= 5.0,
        "regression: steady-state RESTORE should be far faster than a POOL rebuild \
         (got {restore_speedup:.1}x)"
    );
}
