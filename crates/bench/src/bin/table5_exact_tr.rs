//! Regenerates Table V: Exact vs GreedyReplace on ~100-vertex extracts of
//! EmailCore under the Trivalency (TR) model, budgets 1..=4.
use imin_bench::BenchSettings;
use imin_diffusion::ProbabilityModel;
fn main() {
    let settings = BenchSettings::from_env();
    println!("== Table V: Exact vs GreedyReplace (TR model) ==");
    imin_bench::experiments::exact_vs_gr(
        ProbabilityModel::Trivalency {
            seed: settings.seed,
        },
        &settings,
    )
    .emit("table5_exact_tr");
}
