//! PR 3 performance trajectory: cold single-shot containment runs versus the
//! resident `imin-engine` pool, at θ = 10 000 on the 50 000-vertex WC
//! benchmark graph of `bench_pr2`.
//!
//! Four numbers tell the story:
//!
//! * `classic_single_shot_secs` — the status quo before this PR: one
//!   `advanced_greedy` call that redraws θ samples every greedy round and
//!   throws them away afterwards.
//! * `engine_cold_secs` — a fresh engine answering its first query: pool
//!   build (the one-off θ·O(m) investment) plus the first pooled query.
//! * `resident_distinct_query_secs` — a *different* question against the
//!   now-resident pool: only re-rooting + dominator trees.
//! * `resident_identical_query_secs` — the same question again: the LRU
//!   cache answers in microseconds.
//!
//! Also records pool-build scaling at 1/2/4/8 threads and asserts that
//! blocker selections are bit-identical across thread counts at full θ.
//!
//! Emits `BENCH_PR3.json` in the repository root (override the directory
//! with `IMIN_BENCH_OUT`). Run with:
//! `cargo run --release -p imin-bench --bin bench_pr3`

use imin_core::advanced_greedy::advanced_greedy;
use imin_core::{AlgorithmConfig, SamplePool};
use imin_diffusion::ProbabilityModel;
use imin_engine::{Engine, Query, QueryAlgorithm};
use imin_graph::{generators, VertexId};
use std::io::Write;
use std::time::Instant;

const THETA: usize = 10_000;
const BUDGET: usize = 10;

fn main() {
    let n = 50_000usize;
    eprintln!("generating {n}-vertex preferential-attachment topology …");
    let topology =
        generators::preferential_attachment(n, 4, true, 1.0, 20230227).expect("generator");
    let graph = ProbabilityModel::WeightedCascade
        .apply(&topology)
        .expect("WC probabilities");
    // Hub seeds: the highest out-degree vertices make the hardest queries.
    let mut hubs: Vec<VertexId> = graph.vertices().collect();
    hubs.sort_by_key(|&v| std::cmp::Reverse(graph.out_degree(v)));
    let source = hubs[0];
    eprintln!(
        "graph ready: n={n}, m={}, hub source={source} (out-degree {})",
        graph.num_edges(),
        graph.out_degree(source)
    );

    // ---- Status quo: classic self-sampling AdvancedGreedy -----------------
    let classic_cfg = AlgorithmConfig::default()
        .with_theta(THETA)
        .with_threads(1)
        .with_seed(7);
    let start = Instant::now();
    let classic = advanced_greedy(&graph, source, &vec![false; n], BUDGET, &classic_cfg)
        .expect("classic advanced greedy");
    let classic_single_shot_secs = start.elapsed().as_secs_f64();
    eprintln!(
        "classic single-shot (θ={THETA}, budget={BUDGET}): {classic_single_shot_secs:.3}s, \
         spread {:.1}",
        classic.estimated_spread.unwrap_or(f64::NAN)
    );

    // ---- Engine: cold (pool build + first query) --------------------------
    let mut engine = Engine::new().with_threads(1);
    engine.load_graph(graph.clone(), "pa-50k/WC".into());
    let hot_query = Query {
        seeds: vec![source],
        budget: BUDGET,
        algorithm: QueryAlgorithm::AdvancedGreedy,
        intervention: imin_core::Intervention::BlockVertices,
    };
    let start = Instant::now();
    engine.build_pool(THETA, 7).expect("pool build");
    let pool_build_secs = engine
        .pool_info()
        .expect("pool info")
        .build_time
        .as_secs_f64();
    let first = engine.query(&hot_query).expect("first query");
    let engine_cold_secs = start.elapsed().as_secs_f64();
    let first_query_secs = first.elapsed.as_secs_f64();
    eprintln!(
        "engine cold: {engine_cold_secs:.3}s (pool {pool_build_secs:.3}s + query \
         {first_query_secs:.3}s), spread {:.1}",
        first.estimated_spread.unwrap_or(f64::NAN)
    );

    // ---- Resident: distinct queries (no cache help) -----------------------
    let distinct_seeds = [hubs[1], hubs[2], hubs[3]];
    let mut resident_distinct_secs = 0.0f64;
    for &seed in &distinct_seeds {
        let q = Query {
            seeds: vec![seed],
            budget: BUDGET,
            algorithm: QueryAlgorithm::AdvancedGreedy,
            intervention: imin_core::Intervention::BlockVertices,
        };
        let result = engine.query(&q).expect("resident query");
        assert!(!result.from_cache);
        resident_distinct_secs += result.elapsed.as_secs_f64();
    }
    resident_distinct_secs /= distinct_seeds.len() as f64;
    eprintln!(
        "resident distinct query (avg of {}): {resident_distinct_secs:.3}s",
        3
    );

    // ---- Resident: the second identical query (LRU cache) -----------------
    let again = engine.query(&hot_query).expect("identical query");
    assert!(
        again.from_cache,
        "second identical query must hit the cache"
    );
    assert_eq!(again.blockers, first.blockers);
    let resident_identical_secs = again.elapsed.as_secs_f64().max(1e-9);
    eprintln!(
        "resident identical query: {:.1}µs (cache hit)",
        resident_identical_secs * 1e6
    );

    let identical_speedup = engine_cold_secs / resident_identical_secs;
    let distinct_speedup = engine_cold_secs / resident_distinct_secs;
    let distinct_vs_classic = classic_single_shot_secs / resident_distinct_secs;
    eprintln!(
        "speedups vs engine-cold: identical {identical_speedup:.0}x, distinct \
         {distinct_speedup:.2}x (vs classic single-shot: {distinct_vs_classic:.2}x)"
    );

    // ---- Bit-identical selections across thread counts at full θ ----------
    eprintln!("checking thread-count invariance at θ={THETA} …");
    let pool_t8 = SamplePool::build_with_threads(&graph, THETA, 7, 8).expect("8-thread pool");
    let sel_t8 = imin_core::advanced_greedy::advanced_greedy_with_pool(
        &pool_t8,
        &[source],
        &vec![false; n],
        BUDGET,
        8,
    )
    .expect("8-thread pooled query");
    assert_eq!(
        sel_t8.blockers, first.blockers,
        "8-thread pool+query must match the sequential engine"
    );
    assert_eq!(sel_t8.estimated_spread, first.estimated_spread);
    drop(pool_t8);
    eprintln!("thread-count invariance holds (1 vs 8 threads, bit-identical)");

    // ---- Pool-build scaling -----------------------------------------------
    let mut scaling = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let start = Instant::now();
        let pool = SamplePool::build_with_threads(&graph, THETA, 7, threads).expect("pool");
        let secs = start.elapsed().as_secs_f64();
        eprintln!("pool build, {threads} thread(s): {secs:.3}s");
        std::hint::black_box(pool.total_live_edges());
        scaling.push((threads, secs));
    }

    // ---- Emit BENCH_PR3.json ----------------------------------------------
    let out_dir = std::env::var("IMIN_BENCH_OUT").unwrap_or_else(|_| ".".into());
    let path = std::path::Path::new(&out_dir).join("BENCH_PR3.json");
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"pr\": 3,\n");
    json.push_str("  \"benchmark\": \"resident_engine\",\n");
    json.push_str("  \"description\": \"cold single-shot containment runs vs the resident imin-engine sample pool (queries: AdvancedGreedy, hub seeds)\",\n");
    json.push_str(&format!(
        "  \"graph\": {{ \"generator\": \"preferential_attachment\", \"model\": \"WC\", \"vertices\": {n}, \"edges\": {} }},\n",
        graph.num_edges()
    ));
    json.push_str(&format!(
        "  \"theta\": {THETA},\n  \"budget\": {BUDGET},\n  \"query_threads\": 1,\n"
    ));
    json.push_str(&format!(
        "  \"classic_single_shot_secs\": {classic_single_shot_secs:.6},\n"
    ));
    json.push_str(&format!(
        "  \"engine_cold_secs\": {engine_cold_secs:.6},\n  \"pool_build_secs\": {pool_build_secs:.6},\n  \"first_query_secs\": {first_query_secs:.6},\n"
    ));
    json.push_str(&format!(
        "  \"resident_distinct_query_secs\": {resident_distinct_secs:.6},\n"
    ));
    json.push_str(&format!(
        "  \"resident_identical_query_secs\": {resident_identical_secs:.9},\n"
    ));
    json.push_str(&format!(
        "  \"resident_identical_query_speedup_vs_cold\": {identical_speedup:.1},\n"
    ));
    json.push_str(&format!(
        "  \"resident_distinct_query_speedup_vs_cold\": {distinct_speedup:.3},\n"
    ));
    json.push_str(&format!(
        "  \"resident_distinct_query_speedup_vs_classic\": {distinct_vs_classic:.3},\n"
    ));
    json.push_str("  \"thread_count_invariance\": { \"checked_threads\": [1, 8], \"bit_identical\": true },\n");
    json.push_str("  \"pool_build_scaling\": [\n");
    for (i, (threads, secs)) in scaling.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"threads\": {threads}, \"secs\": {secs:.6} }}{}\n",
            if i + 1 < scaling.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let mut file = std::fs::File::create(&path).expect("create BENCH_PR3.json");
    file.write_all(json.as_bytes())
        .expect("write BENCH_PR3.json");
    println!("wrote {}", path.display());
}
