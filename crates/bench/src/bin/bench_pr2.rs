//! PR 2 performance trajectory: wall time of `DecreaseESComputation`
//! (Algorithm 2) at θ ∈ {1 000, 10 000} on a 50 000-vertex WC-model graph,
//! comparing the arena-backed flat hot path against a faithful replica of
//! the seed implementation (nested `Vec<Vec<u32>>` sample adjacency and a
//! Lengauer–Tarjan with per-vertex predecessor/bucket vectors and a
//! collected-successor DFS — the exact allocation behaviour this PR
//! removed).
//!
//! Emits `BENCH_PR2.json` in the repository root (override the directory
//! with `IMIN_BENCH_OUT`), seeding the repo's benchmark history.
//!
//! Run with: `cargo run --release -p imin-bench --bin bench_pr2`

use imin_core::decrease::{decrease_es_computation_in, DecreaseConfig, DecreaseWorkspace};
use imin_core::sampler::IcLiveEdgeSampler;
use imin_diffusion::ProbabilityModel;
use imin_graph::{generators, DiGraph, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::io::Write;
use std::time::Instant;

/// The seed implementation of the sampling→dominator hot path, kept verbatim
/// in spirit: every structure that used to be a nested vector still is.
mod legacy {
    use super::*;

    const UNMAPPED: u32 = u32::MAX;
    const NONE: u32 = u32::MAX;

    pub struct LegacySample {
        pub vertices: Vec<u32>,
        pub adjacency: Vec<Vec<u32>>,
        local_of: Vec<u32>,
    }

    impl LegacySample {
        pub fn new(n: usize) -> Self {
            LegacySample {
                vertices: Vec::new(),
                adjacency: Vec::new(),
                local_of: vec![UNMAPPED; n],
            }
        }

        fn reset(&mut self) {
            for &v in &self.vertices {
                self.local_of[v as usize] = UNMAPPED;
            }
            self.vertices.clear();
            // Inner vectors keep their capacity, exactly like the seed code.
        }

        fn intern(&mut self, global: u32) -> u32 {
            let slot = self.local_of[global as usize];
            if slot != UNMAPPED {
                return slot;
            }
            let local = self.vertices.len() as u32;
            self.local_of[global as usize] = local;
            self.vertices.push(global);
            if self.adjacency.len() <= local as usize {
                self.adjacency.push(Vec::new());
            } else {
                self.adjacency[local as usize].clear();
            }
            local
        }

        /// The seed IC sampler: identical coin-flip order to the flat one.
        pub fn sample(
            &mut self,
            graph: &DiGraph,
            source: VertexId,
            blocked: &[bool],
            rng: &mut SmallRng,
        ) {
            self.reset();
            if blocked[source.index()] {
                return;
            }
            self.intern(source.raw());
            let mut head = 0usize;
            while head < self.vertices.len() {
                let u_global = self.vertices[head];
                let u_local = head as u32;
                head += 1;
                let u = VertexId::from_raw(u_global);
                let targets = graph.out_neighbors(u);
                let probs = graph.out_probabilities(u);
                for (&t, &p) in targets.iter().zip(probs) {
                    if blocked[t as usize] {
                        continue;
                    }
                    let live = if p >= 1.0 {
                        true
                    } else if p <= 0.0 {
                        false
                    } else {
                        rng.gen_bool(p)
                    };
                    if !live {
                        continue;
                    }
                    let t_local = self.intern(t);
                    self.adjacency[u_local as usize].push(t_local);
                }
            }
        }
    }

    /// The seed Lengauer–Tarjan: fresh `preds`/`buckets` nested vectors and
    /// a collected-successor DFS stack, allocated anew on every call.
    pub fn dominators_nested(adjacency: &[Vec<u32>], n: usize) -> (Vec<u32>, Vec<u32>) {
        let root = 0u32;
        let mut dfn = vec![0u32; n];
        let mut vertex: Vec<u32> = Vec::new();
        let mut parent = vec![NONE; n];
        let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];

        dfn[root as usize] = 1;
        vertex.push(root);
        struct Frame {
            v: u32,
            succs: Vec<u32>,
            next: usize,
        }
        let mut stack: Vec<Frame> = vec![Frame {
            v: root,
            succs: adjacency[root as usize].clone(),
            next: 0,
        }];
        while let Some(frame) = stack.last_mut() {
            if frame.next < frame.succs.len() {
                let u = frame.v;
                let v = frame.succs[frame.next];
                frame.next += 1;
                preds[v as usize].push(u);
                if dfn[v as usize] == 0 {
                    dfn[v as usize] = vertex.len() as u32 + 1;
                    vertex.push(v);
                    parent[v as usize] = u;
                    stack.push(Frame {
                        v,
                        succs: adjacency[v as usize].clone(),
                        next: 0,
                    });
                }
            } else {
                stack.pop();
            }
        }
        let reached = vertex.len();
        let mut idom = vec![NONE; n];
        if reached <= 1 {
            return (idom, vertex);
        }

        let mut semi: Vec<u32> = dfn.clone();
        let mut ancestor = vec![NONE; n];
        let mut label: Vec<u32> = (0..n as u32).collect();
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut compress_stack: Vec<u32> = Vec::new();

        let eval = |v: u32,
                    ancestor: &mut Vec<u32>,
                    label: &mut Vec<u32>,
                    semi: &Vec<u32>,
                    compress_stack: &mut Vec<u32>|
         -> u32 {
            if ancestor[v as usize] == NONE {
                return v;
            }
            compress_stack.clear();
            let mut cur = v;
            while ancestor[ancestor[cur as usize] as usize] != NONE {
                compress_stack.push(cur);
                cur = ancestor[cur as usize];
            }
            while let Some(w) = compress_stack.pop() {
                let anc = ancestor[w as usize];
                if semi[label[anc as usize] as usize] < semi[label[w as usize] as usize] {
                    label[w as usize] = label[anc as usize];
                }
                ancestor[w as usize] = ancestor[anc as usize];
            }
            label[v as usize]
        };

        for i in (1..reached).rev() {
            let w = vertex[i];
            let p = parent[w as usize];
            #[allow(clippy::needless_range_loop)]
            for pi in 0..preds[w as usize].len() {
                let v = preds[w as usize][pi];
                let u = eval(v, &mut ancestor, &mut label, &semi, &mut compress_stack);
                if semi[u as usize] < semi[w as usize] {
                    semi[w as usize] = semi[u as usize];
                }
            }
            buckets[vertex[(semi[w as usize] - 1) as usize] as usize].push(w);
            ancestor[w as usize] = p;
            let bucket = std::mem::take(&mut buckets[p as usize]);
            for v in bucket {
                let u = eval(v, &mut ancestor, &mut label, &semi, &mut compress_stack);
                idom[v as usize] = if semi[u as usize] < semi[v as usize] {
                    u
                } else {
                    p
                };
            }
        }
        for i in 1..reached {
            let w = vertex[i];
            if idom[w as usize] != vertex[(semi[w as usize] - 1) as usize] {
                idom[w as usize] = idom[idom[w as usize] as usize];
            }
        }
        idom[root as usize] = NONE;
        (idom, vertex)
    }

    /// The seed Algorithm 2 inner loop: fresh subtree-size vector per
    /// sample, nested adjacency fed to the nested Lengauer–Tarjan.
    pub fn decrease(
        graph: &DiGraph,
        source: VertexId,
        blocked: &[bool],
        theta: usize,
        seed: u64,
    ) -> (Vec<f64>, f64) {
        let n = graph.num_vertices();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut sample = LegacySample::new(n);
        let mut delta_sum = vec![0.0f64; n];
        let mut reached_sum = 0.0f64;
        for _ in 0..theta {
            sample.sample(graph, source, blocked, &mut rng);
            let reached = sample.vertices.len();
            reached_sum += reached as f64;
            if reached <= 1 {
                continue;
            }
            let (idom, preorder) = dominators_nested(&sample.adjacency[..reached], reached);
            let mut sizes = vec![0u64; reached];
            for &v in &preorder {
                sizes[v as usize] = 1;
            }
            for &v in preorder.iter().rev() {
                let d = idom[v as usize];
                if d != NONE {
                    sizes[d as usize] += sizes[v as usize];
                }
            }
            for local in 1..reached {
                delta_sum[sample.vertices[local] as usize] += sizes[local] as f64;
            }
        }
        let inv = 1.0 / theta as f64;
        for d in delta_sum.iter_mut() {
            *d *= inv;
        }
        (delta_sum, reached_sum * inv)
    }
}

struct Measurement {
    theta: usize,
    legacy_secs: f64,
    flat_secs: f64,
}

fn time_best_of<F: FnMut() -> f64>(reps: usize, mut f: F) -> f64 {
    (0..reps).map(|_| f()).fold(f64::INFINITY, f64::min)
}

fn main() {
    let n = 50_000usize;
    eprintln!("generating {n}-vertex preferential-attachment topology …");
    let topology =
        generators::preferential_attachment(n, 4, true, 1.0, 20230227).expect("generator");
    let graph = ProbabilityModel::WeightedCascade
        .apply(&topology)
        .expect("WC probabilities");
    let source = graph
        .vertices()
        .max_by_key(|&v| graph.out_degree(v))
        .expect("nonempty graph");
    let blocked = vec![false; n];
    eprintln!(
        "graph ready: n={n}, m={}, source={source} (out-degree {})",
        graph.num_edges(),
        graph.out_degree(source)
    );

    // Sanity: both paths must price candidates identically before timing.
    let (legacy_delta, legacy_avg) = legacy::decrease(&graph, source, &blocked, 200, 1);
    let mut workspace = DecreaseWorkspace::new();
    let check_cfg = DecreaseConfig {
        theta: 200,
        threads: 1,
        seed: 1,
    };
    let flat = decrease_es_computation_in(
        &IcLiveEdgeSampler,
        &graph,
        source,
        &blocked,
        &check_cfg,
        &mut workspace,
    )
    .expect("flat estimator");
    assert_eq!(flat.delta, legacy_delta, "legacy and flat paths diverged");
    assert_eq!(flat.average_reached, legacy_avg);
    eprintln!(
        "parity check passed (θ=200, bit-identical deltas); average cascade size {:.1}",
        flat.average_reached
    );

    let mut results = Vec::new();
    for theta in [1_000usize, 10_000] {
        let reps = if theta <= 1_000 { 3 } else { 2 };
        let legacy_secs = time_best_of(reps, || {
            let start = Instant::now();
            let out = legacy::decrease(&graph, source, &blocked, theta, 7);
            std::hint::black_box(out.1);
            start.elapsed().as_secs_f64()
        });
        let flat_secs = time_best_of(reps, || {
            let cfg = DecreaseConfig {
                theta,
                threads: 1,
                seed: 7,
            };
            let start = Instant::now();
            let out = decrease_es_computation_in(
                &IcLiveEdgeSampler,
                &graph,
                source,
                &blocked,
                &cfg,
                &mut workspace,
            )
            .expect("flat estimator");
            std::hint::black_box(out.average_reached);
            start.elapsed().as_secs_f64()
        });
        println!(
            "theta {theta:>6}: legacy {legacy_secs:.4}s  flat {flat_secs:.4}s  speedup {:.2}x",
            legacy_secs / flat_secs
        );
        results.push(Measurement {
            theta,
            legacy_secs,
            flat_secs,
        });
    }

    let out_dir = std::env::var("IMIN_BENCH_OUT").unwrap_or_else(|_| ".".into());
    let path = std::path::Path::new(&out_dir).join("BENCH_PR2.json");
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"pr\": 2,\n");
    json.push_str("  \"benchmark\": \"decrease_es_computation\",\n");
    json.push_str("  \"description\": \"Algorithm 2 wall time, seed nested-vector hot path vs arena-backed flat hot path\",\n");
    json.push_str(&format!(
        "  \"graph\": {{ \"generator\": \"preferential_attachment\", \"model\": \"WC\", \"vertices\": {n}, \"edges\": {} }},\n",
        graph.num_edges()
    ));
    json.push_str("  \"threads\": 1,\n");
    json.push_str("  \"results\": [\n");
    for (i, m) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"theta\": {}, \"legacy_secs\": {:.6}, \"flat_secs\": {:.6}, \"speedup\": {:.3} }}{}\n",
            m.theta,
            m.legacy_secs,
            m.flat_secs,
            m.legacy_secs / m.flat_secs,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let mut file = std::fs::File::create(&path).expect("create BENCH_PR2.json");
    file.write_all(json.as_bytes())
        .expect("write BENCH_PR2.json");
    println!("wrote {}", path.display());
}
