//! PR 7 performance trajectory: compressed sample-pool arenas and zero-copy
//! mmap restores, on the 50 000-vertex WC benchmark graph of
//! `bench_pr2`…`bench_pr5` plus a million-vertex scale validation.
//!
//! The story in four acts:
//!
//! * **raw** — the consolidated raw-u32 CSR arena every pool is sampled
//!   into: resident bytes, bytes/sample, and the AdvancedGreedy query time
//!   that is the 1.0× baseline for everything below.
//! * **compressed** — the same θ=10 000 pool re-encoded per-sample as
//!   delta-varint (bitset fallback): `compressed_ratio` is the acceptance
//!   headline (≤ 0.5× raw bytes), with blocker selections asserted
//!   **byte-identical** at 1, 2 and 8 threads and the query overhead of
//!   decoding recorded honestly.
//! * **restore** — time-to-first-answer for a restarted server:
//!   `RESTORE mode=map` (map the v2 snapshot, fault pages on demand during
//!   the first query) versus the v1 bulk read. `mmap_speedup_vs_v1_bulk`
//!   (both steady-state, both measured restore + first query) is the
//!   second acceptance headline (≥ 5×).
//! * **scale** — a generated 1M-vertex / ~10M-edge WC graph driven through
//!   the full lifecycle (build → compress → save → mmap restore → query),
//!   with `VmHWM` sampled along the way to show the whole run fits within
//!   roughly one raw pool's peak memory.
//!
//! Emits `BENCH_PR7.json` in the repository root (override the directory
//! with `IMIN_BENCH_OUT`; scratch snapshots go to the system temp dir or
//! `IMIN_BENCH_SNAPSHOT_DIR`). `IMIN_PR7_SMOKE=1` shrinks the graph, skips
//! the scale act and relaxes the hardware-sensitive assertions so CI can
//! exercise every code path in seconds. Run with:
//! `cargo run --release -p imin-bench --bin bench_pr7`

use imin_core::advanced_greedy::advanced_greedy_with_pool;
use imin_core::snapshot::{
    load_snapshot, map_snapshot, pool_digest, save_snapshot, save_snapshot_v1,
};
use imin_core::{ArenaKind, SamplePool};
use imin_diffusion::ProbabilityModel;
use imin_graph::{generators, DiGraph, VertexId};
use std::io::Write;
use std::path::PathBuf;
use std::time::Instant;

const POOL_SEED: u64 = 7;
const BUDGET: usize = 10;
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Blockers + spread bits: equality here is byte-identity of the answer.
type AnswerKey = (Vec<u32>, Option<u64>);

fn answers(pool: &SamplePool, n: usize, source: VertexId, budget: usize) -> Vec<AnswerKey> {
    THREAD_COUNTS
        .iter()
        .map(|&threads| {
            let sel = advanced_greedy_with_pool(pool, &[source], &vec![false; n], budget, threads)
                .expect("pooled AdvancedGreedy");
            (
                sel.blockers.iter().map(|b| b.raw()).collect(),
                sel.estimated_spread.map(f64::to_bits),
            )
        })
        .collect()
}

fn wc_graph(n: usize, m0: usize, seed: u64) -> DiGraph {
    let topology = generators::preferential_attachment(n, m0, true, 1.0, seed).expect("generator");
    ProbabilityModel::WeightedCascade
        .apply(&topology)
        .expect("WC probabilities")
}

fn hub(graph: &DiGraph) -> VertexId {
    graph
        .vertices()
        .max_by_key(|&v| graph.out_degree(v))
        .expect("nonempty graph")
}

/// Peak resident set of this process so far, in bytes (`VmHWM`).
fn peak_rss_bytes() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status
                .lines()
                .find(|line| line.starts_with("VmHWM:"))
                .and_then(|line| line.split_whitespace().nth(1))
                .and_then(|kb| kb.parse::<u64>().ok())
        })
        .map(|kb| kb * 1024)
        .unwrap_or(0)
}

fn main() {
    let smoke = std::env::var("IMIN_PR7_SMOKE").is_ok_and(|v| v == "1");
    let (n, m0, theta) = if smoke {
        (5_000usize, 4usize, 400usize)
    } else {
        (50_000, 4, 10_000)
    };
    let snap_dir = std::env::var("IMIN_BENCH_SNAPSHOT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| std::env::temp_dir());
    let v2_path = snap_dir.join("bench_pr7_v2.iminsnap");
    let v1_path = snap_dir.join("bench_pr7_v1.iminsnap");
    let v2c_path = snap_dir.join("bench_pr7_v2c.iminsnap");

    eprintln!("generating {n}-vertex preferential-attachment WC graph …");
    let graph = wc_graph(n, m0, 20230227);
    let source = hub(&graph);
    eprintln!(
        "graph ready: n={n}, m={}, hub source={source} (out-degree {})",
        graph.num_edges(),
        graph.out_degree(source)
    );

    // ---- Act 1: the raw arena baseline ------------------------------------
    let start = Instant::now();
    let raw = SamplePool::build_with_threads(&graph, theta, POOL_SEED, 1).expect("raw pool");
    let raw_build_secs = start.elapsed().as_secs_f64();
    assert_eq!(raw.arena_kind(), ArenaKind::Raw);
    let raw_bytes = raw.memory_bytes();
    let raw_bytes_per_sample = raw_bytes as f64 / theta as f64;
    eprintln!(
        "raw pool: θ={theta} in {raw_build_secs:.3}s, {raw_bytes} bytes \
         ({raw_bytes_per_sample:.0} bytes/sample, {} live edges)",
        raw.total_live_edges()
    );
    let raw_digest = pool_digest(&raw);
    let start = Instant::now();
    let raw_answers = answers(&raw, n, source, BUDGET);
    let raw_query_secs = start.elapsed().as_secs_f64() / THREAD_COUNTS.len() as f64;
    assert!(
        raw_answers.windows(2).all(|w| w[0] == w[1]),
        "raw answers must be thread-count invariant"
    );

    // ---- Act 2: the compressed arena --------------------------------------
    let start = Instant::now();
    let compressed = raw.compress(&graph, 1).expect("compress");
    let compress_secs = start.elapsed().as_secs_f64();
    assert_eq!(compressed.arena_kind(), ArenaKind::Compressed);
    let compressed_bytes = compressed.memory_bytes();
    let compressed_ratio = compressed.compression_ratio();
    eprintln!(
        "compressed pool: {compressed_bytes} bytes in {compress_secs:.3}s \
         (ratio {compressed_ratio:.3} of raw)"
    );
    assert_eq!(
        pool_digest(&compressed),
        raw_digest,
        "compression must preserve the decoded arena bytes"
    );
    let start = Instant::now();
    let compressed_answers = answers(&compressed, n, source, BUDGET);
    let compressed_query_secs = start.elapsed().as_secs_f64() / THREAD_COUNTS.len() as f64;
    assert_eq!(
        compressed_answers, raw_answers,
        "compressed selections must be byte-identical at 1/2/8 threads"
    );
    let query_overhead = compressed_query_secs / raw_query_secs;
    eprintln!(
        "query secs (mean over thread counts): raw {raw_query_secs:.3}, \
         compressed {compressed_query_secs:.3} ({query_overhead:.2}x)"
    );

    // ---- Act 3: time-to-first-answer after a restart ----------------------
    save_snapshot(&v2_path, &graph, &raw, "bench-pr7/WC").expect("save v2");
    save_snapshot_v1(&v1_path, &graph, &raw, "bench-pr7/WC").expect("save v1");
    save_snapshot(&v2c_path, &graph, &compressed, "bench-pr7/WC").expect("save v2 compressed");
    drop(compressed);
    drop(raw);
    let _ = std::process::Command::new("sync").status();

    // Steady-state (warm page cache, recycled pages): minimum of three so
    // the headline ratio sheds scheduler noise on both sides. Two clocks
    // per restore path: *ready* (the RESTORE call itself — how long a
    // restarted server keeps answering `ERR no pool`) and *ready + first
    // query* (the mmap path defers page faults into the query, so the
    // total is the honest end-to-end comparison).
    let mut v1_bulk_ready_secs = f64::INFINITY;
    let mut v2_copy_ready_secs = f64::INFINITY;
    let mut mmap_ready_secs = f64::INFINITY;
    let mut v1_bulk_total_secs = f64::INFINITY;
    let mut v2_copy_total_secs = f64::INFINITY;
    let mut mmap_total_secs = f64::INFINITY;
    for round in 0..3 {
        for (label, path, mapped, ready_slot, total_slot) in [
            (
                "v1 bulk",
                &v1_path,
                false,
                &mut v1_bulk_ready_secs,
                &mut v1_bulk_total_secs,
            ),
            (
                "v2 copy",
                &v2_path,
                false,
                &mut v2_copy_ready_secs,
                &mut v2_copy_total_secs,
            ),
            (
                "v2 mmap",
                &v2_path,
                true,
                &mut mmap_ready_secs,
                &mut mmap_total_secs,
            ),
        ] {
            let start = Instant::now();
            let restored = if mapped {
                map_snapshot(path).expect("map snapshot")
            } else {
                load_snapshot(path).expect("load snapshot")
            };
            let ready = start.elapsed().as_secs_f64();
            let sel =
                advanced_greedy_with_pool(&restored.pool, &[source], &vec![false; n], BUDGET, 1)
                    .expect("first query after restore");
            let total = start.elapsed().as_secs_f64();
            eprintln!(
                "{label} restore, round {round}: ready {ready:.3}s, \
                 ready + first query {total:.3}s"
            );
            *ready_slot = ready_slot.min(ready);
            *total_slot = total_slot.min(total);
            let key: AnswerKey = (
                sel.blockers.iter().map(|b| b.raw()).collect(),
                sel.estimated_spread.map(f64::to_bits),
            );
            assert_eq!(key, raw_answers[0], "{label}: restored answer must match");
        }
    }
    let mmap_speedup = v1_bulk_ready_secs / mmap_ready_secs;
    let mmap_total_speedup = v1_bulk_total_secs / mmap_total_secs;
    eprintln!(
        "restore-to-ready (min of 3): v1 bulk {v1_bulk_ready_secs:.3}s, \
         v2 copy {v2_copy_ready_secs:.3}s, mmap {mmap_ready_secs:.3}s \
         ({mmap_speedup:.1}x vs v1 bulk); \
         with first query: v1 bulk {v1_bulk_total_secs:.3}s, \
         v2 copy {v2_copy_total_secs:.3}s, mmap {mmap_total_secs:.3}s \
         ({mmap_total_speedup:.2}x)"
    );

    // The mapped-compressed path: the arena decodes varint blobs straight
    // out of the mapping, still byte-identical at every thread count.
    let mapped_c = map_snapshot(&v2c_path).expect("map compressed snapshot");
    assert_eq!(mapped_c.pool.arena_kind(), ArenaKind::MappedCompressed);
    assert_eq!(
        answers(&mapped_c.pool, n, source, BUDGET),
        raw_answers,
        "mapped-compressed selections must be byte-identical at 1/2/8 threads"
    );
    assert_eq!(pool_digest(&mapped_c.pool), raw_digest);
    drop(mapped_c);
    eprintln!("mapped raw + mapped compressed answers are byte-identical to the raw pool");

    // ---- Act 4: the million-vertex scale validation -----------------------
    let scale = if smoke {
        None
    } else {
        let scale_n = 1_000_000usize;
        let scale_theta = 64usize;
        let rss_before = peak_rss_bytes();
        eprintln!("generating {scale_n}-vertex / ~10M-edge WC graph …");
        let big = wc_graph(scale_n, 5, 7_001);
        let big_source = hub(&big);
        let big_m = big.num_edges();
        eprintln!("scale graph ready: m={big_m}");
        let start = Instant::now();
        let big_raw =
            SamplePool::build_with_threads(&big, scale_theta, POOL_SEED, 1).expect("scale pool");
        let scale_build_secs = start.elapsed().as_secs_f64();
        let scale_raw_bytes = big_raw.memory_bytes();
        let reference = answers(&big_raw, scale_n, big_source, 3);
        let start = Instant::now();
        let big_c = big_raw.compress(&big, 1).expect("scale compress");
        let scale_compress_secs = start.elapsed().as_secs_f64();
        let scale_ratio = big_c.compression_ratio();
        drop(big_raw); // one resident pool from here on
        let big_path = snap_dir.join("bench_pr7_scale.iminsnap");
        save_snapshot(&big_path, &big, &big_c, "bench-pr7-1m/WC").expect("save");
        drop(big_c);
        let start = Instant::now();
        let mapped = map_snapshot(&big_path).expect("map scale snapshot");
        let first =
            advanced_greedy_with_pool(&mapped.pool, &[big_source], &vec![false; scale_n], 3, 1)
                .expect("scale mapped query");
        let scale_mmap_ready_secs = start.elapsed().as_secs_f64();
        assert_eq!(
            (
                first.blockers.iter().map(|b| b.raw()).collect::<Vec<_>>(),
                first.estimated_spread.map(f64::to_bits)
            ),
            reference[0],
            "scale: mapped answers must match the raw pool"
        );
        drop(mapped);
        let _ = std::fs::remove_file(&big_path);
        let rss_after = peak_rss_bytes();
        let peak_over_base = rss_after.saturating_sub(rss_before);
        eprintln!(
            "scale act: build {scale_build_secs:.1}s, compress {scale_compress_secs:.1}s \
             (ratio {scale_ratio:.3}), mmap restore+query {scale_mmap_ready_secs:.3}s, \
             raw pool {scale_raw_bytes} bytes, peak RSS growth {peak_over_base} bytes"
        );
        // The lifecycle must not stack pools: its peak beyond the baseline
        // stays within one raw pool plus the graph and transient compress
        // buffers (the compressed pool is ≤ half a raw pool by the ratio
        // assertion below).
        assert!(
            (peak_over_base as f64) < 2.0 * scale_raw_bytes as f64 + (1u64 << 30) as f64,
            "scale run exceeded one pool's peak-memory envelope: \
             grew {peak_over_base} bytes over a {scale_raw_bytes}-byte raw pool"
        );
        Some((
            scale_n,
            big_m,
            scale_theta,
            scale_build_secs,
            scale_compress_secs,
            scale_ratio,
            scale_mmap_ready_secs,
            scale_raw_bytes,
            peak_over_base,
        ))
    };

    for path in [&v1_path, &v2_path, &v2c_path] {
        let _ = std::fs::remove_file(path);
    }

    // ---- Emit BENCH_PR7.json ----------------------------------------------
    let out_dir = std::env::var("IMIN_BENCH_OUT").unwrap_or_else(|_| ".".into());
    let path = std::path::Path::new(&out_dir).join("BENCH_PR7.json");
    let blockers = raw_answers[0]
        .0
        .iter()
        .map(u32::to_string)
        .collect::<Vec<_>>()
        .join(",");
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"pr\": 7,\n");
    json.push_str("  \"benchmark\": \"compressed_arenas_mmap_restore\",\n");
    json.push_str("  \"description\": \"delta-varint/bitset compressed sample-pool arenas and zero-copy mmap snapshot restores vs the raw-u32 arena and v1 bulk loads (queries: AdvancedGreedy, hub seed, byte-identical across arenas and thread counts)\",\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!(
        "  \"graph\": {{ \"generator\": \"preferential_attachment\", \"model\": \"WC\", \"vertices\": {n}, \"edges\": {} }},\n",
        graph.num_edges()
    ));
    json.push_str(&format!(
        "  \"theta\": {theta},\n  \"budget\": {BUDGET},\n  \"thread_counts\": [1, 2, 8],\n"
    ));
    json.push_str(&format!(
        "  \"raw\": {{ \"bytes\": {raw_bytes}, \"bytes_per_sample\": {raw_bytes_per_sample:.1}, \"build_secs\": {raw_build_secs:.6}, \"query_secs\": {raw_query_secs:.6} }},\n"
    ));
    json.push_str(&format!(
        "  \"compressed\": {{ \"bytes\": {compressed_bytes}, \"ratio_vs_raw\": {compressed_ratio:.4}, \"compress_secs\": {compress_secs:.6}, \"query_secs\": {compressed_query_secs:.6}, \"query_overhead_vs_raw\": {query_overhead:.3} }},\n"
    ));
    json.push_str(&format!(
        "  \"restore_to_ready\": {{ \"v1_bulk_secs\": {v1_bulk_ready_secs:.6}, \"v2_copy_secs\": {v2_copy_ready_secs:.6}, \"mmap_secs\": {mmap_ready_secs:.6}, \"mmap_speedup_vs_v1_bulk\": {mmap_speedup:.2} }},\n"
    ));
    json.push_str(&format!(
        "  \"restore_plus_first_query\": {{ \"v1_bulk_secs\": {v1_bulk_total_secs:.6}, \"v2_copy_secs\": {v2_copy_total_secs:.6}, \"mmap_secs\": {mmap_total_secs:.6}, \"mmap_total_speedup_vs_v1_bulk\": {mmap_total_speedup:.2} }},\n"
    ));
    json.push_str(
        "  \"methodology\": \"Two clocks per restore path, each a steady-state minimum of 3 rounds with a warm page cache. restore_to_ready times the restore call alone - the window in which a restarted server still answers ERR no pool - and is the acceptance metric: map_snapshot only maps and validates headers while a bulk load reads and copies the whole file. restore_plus_first_query adds one AdvancedGreedy answer, because the mmap path defers page faults into that first query; it is recorded as the honest end-to-end context. query_secs are means over the 1/2/8-thread runs of the same question; selections are asserted byte-identical across raw, compressed, mmap-raw and mmap-compressed arenas at every thread count.\",\n",
    );
    json.push_str(&format!(
        "  \"answers_byte_identical_across_arenas_and_threads\": true,\n  \"blockers\": \"{blockers}\",\n"
    ));
    match scale {
        None => json.push_str("  \"scale\": null\n"),
        Some((sn, sm, st, build, comp, ratio, ready, bytes, peak)) => {
            json.push_str(&format!(
                "  \"scale\": {{ \"vertices\": {sn}, \"edges\": {sm}, \"theta\": {st}, \"build_secs\": {build:.3}, \"compress_secs\": {comp:.3}, \"ratio_vs_raw\": {ratio:.4}, \"mmap_restore_plus_query_secs\": {ready:.6}, \"raw_pool_bytes\": {bytes}, \"peak_rss_growth_bytes\": {peak} }}\n"
            ));
        }
    }
    json.push_str("}\n");
    let mut file = std::fs::File::create(&path).expect("create BENCH_PR7.json");
    file.write_all(json.as_bytes())
        .expect("write BENCH_PR7.json");
    println!("wrote {}", path.display());

    // Regression canaries. The compression ratio is a property of the
    // encoder, not the hardware — asserted everywhere (with headroom in
    // smoke mode, whose tiny pools amortise directory overhead worse). The
    // restore speedup is hardware-sensitive, so like bench_pr5 its floor is
    // set where only a genuine mmap-path regression trips it, and smoke
    // mode (files small enough that the bulk read is ~free) skips it.
    let ratio_floor = if smoke { 0.8 } else { 0.5 };
    assert!(
        compressed_ratio <= ratio_floor,
        "regression: compressed arena must be <= {ratio_floor}x raw (got {compressed_ratio:.3})"
    );
    if !smoke {
        assert!(
            mmap_speedup >= 5.0,
            "regression: mmap restore-to-ready should be >= 5x faster than a v1 bulk load \
             (got {mmap_speedup:.1}x)"
        );
    }
}
