//! PR 8 observability-overhead benchmark: tracing must be near-free.
//!
//! Loads the 50 000-vertex WC reference graph into **one** in-process
//! [`SharedEngine`], primes a θ=10 000 pool, and times a batch of
//! globally-distinct two-seed questions: each question runs twice back to
//! back — once with observability on (the default: phase spans, trace
//! attachment, histogram recording), once with it off via the runtime
//! [`SharedEngine::set_observability`] toggle — alternating which goes
//! first, over several trials. Both runs hit the *same* pool in the same
//! allocation (an earlier two-engine design showed a consistent
//! few-percent bias from memory layout that had nothing to do with
//! observability), and the back-to-back pairing keeps the two
//! measurements ~150ms apart so background-load drift hits both configs
//! alike (pass-level alternation was observed crediting a quiet spell
//! entirely to one config). The result cache is disabled (capacity 0) so
//! the second run of a question recomputes; every timed answer is
//! asserted `Computed`.
//!
//! Asserts:
//!
//! * **overhead ≤ 3%** — summed per-question minima across trials,
//!   instrumented over uninstrumented (noise only ever inflates a sample,
//!   so the per-question minima approach the true costs even on a busy
//!   box). Override the bound with `IMIN_PR8_MAX_OVERHEAD` (fraction,
//!   default `0.03`).
//! * **byte identity** — every answer from the timed and untimed passes,
//!   and from a fresh single-threaded serial [`Engine`], is identical:
//!   observability must never change a blocker or a spread estimate.
//! * **trace accounting** — a heavy traced query's phase times sum to
//!   within 10% of its reported elapsed time (query_threads=1, so phase
//!   CPU time and wall clock coincide).
//!
//! Emits `BENCH_PR8.json` (directory override: `IMIN_BENCH_OUT`) with the
//! timings, the overhead, and the per-phase breakdown of a computed
//! query at the benchmark θ. Knobs (env): `IMIN_PR8_N`, `IMIN_PR8_THETA`,
//! `IMIN_PR8_BATCH`, `IMIN_PR8_TRIALS`, `IMIN_PR8_SMOKE=1` (small preset).
//!
//! Run with: `cargo run --release -p imin-bench --bin bench_pr8`

use imin_diffusion::ProbabilityModel;
use imin_engine::{AlgorithmKind, Disposition, Engine, Phase, Query, SharedEngine};
use imin_graph::{generators, DiGraph, VertexId};
use std::io::Write;
use std::time::Instant;

/// The eight query phases, in reply order (mirrors `QUERY_PHASES`).
const PHASES: [Phase; 8] = [
    Phase::Clone,
    Phase::Probe,
    Phase::Sample,
    Phase::Decode,
    Phase::Bfs,
    Phase::DomTree,
    Phase::Credit,
    Phase::Select,
];

/// Blockers + spread of one answer, for the parity checks.
type Answer = (Vec<u32>, Option<f64>);

struct Cfg {
    n: usize,
    theta: usize,
    batch: usize,
    trials: usize,
    max_overhead: f64,
    smoke: bool,
}

fn env_num<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

impl Cfg {
    fn from_env() -> Cfg {
        let smoke = std::env::var("IMIN_PR8_SMOKE")
            .map(|v| v == "1")
            .unwrap_or(false);
        let (n, theta, batch) = if smoke {
            (3_000, 300, 24)
        } else {
            (50_000, 10_000, 40)
        };
        // The 3% budget is defined at the benchmark scale, where a
        // question costs ~160ms. Smoke questions finish in ~2ms, so the
        // same fixed per-sample lap cost is a several-fold larger
        // fraction — the smoke preset only checks the harness end to end.
        let max_overhead = if smoke { 0.12 } else { 0.03 };
        Cfg {
            n: env_num("IMIN_PR8_N", n),
            theta: env_num("IMIN_PR8_THETA", theta),
            batch: env_num("IMIN_PR8_BATCH", batch),
            trials: env_num("IMIN_PR8_TRIALS", 9),
            max_overhead: env_num("IMIN_PR8_MAX_OVERHEAD", max_overhead),
            smoke,
        }
    }
}

/// A globally-unique two-seed budget-2 question per index — the same
/// derivation as bench_pr6's distinct workload, so every question costs
/// real pool work and none repeats.
fn distinct_query(n: usize, k: u64) -> Query {
    let id = k.wrapping_mul(1_000_000_007);
    let a = (id.wrapping_mul(2_654_435_761) % n as u64) as usize;
    let mut b = (a + 1 + (id as usize % (n - 1))) % n;
    if b == a {
        b = (a + 1) % n;
    }
    Query {
        seeds: vec![VertexId::new(a), VertexId::new(b)],
        budget: 2,
        algorithm: AlgorithmKind::AdvancedGreedy,
        intervention: imin_core::Intervention::BlockVertices,
    }
}

/// Times one question, returning the seconds and the answer. Asserts the
/// answer was freshly computed — a cache hit would time nothing.
fn timed_query(engine: &SharedEngine, query: &Query) -> (f64, Answer) {
    let start = Instant::now();
    let result = engine.query(query).expect("timed query");
    assert_eq!(
        result.disposition,
        Disposition::Computed,
        "timed answers must be computed, not cached or coalesced"
    );
    (
        start.elapsed().as_secs_f64(),
        (
            result.blockers.iter().map(|b| b.raw()).collect(),
            result.estimated_spread,
        ),
    )
}

/// Times `query` with observability set to `enabled`, folding the time
/// into its running minimum.
fn timed_with(engine: &SharedEngine, query: &Query, enabled: bool, best: &mut f64) -> Answer {
    engine.set_observability(enabled);
    let (secs, ans) = timed_query(engine, query);
    *best = best.min(secs);
    ans
}

fn main() {
    let cfg = Cfg::from_env();
    eprintln!(
        "bench_pr8: n={} theta={} batch={} trials={} max_overhead={:.1}% smoke={}",
        cfg.n,
        cfg.theta,
        cfg.batch,
        cfg.trials,
        cfg.max_overhead * 100.0,
        cfg.smoke
    );

    eprintln!("building the WC reference graph …");
    let graph: DiGraph = ProbabilityModel::WeightedCascade
        .apply(
            &generators::preferential_attachment(cfg.n, 4, true, 1.0, 20230227).expect("topology"),
        )
        .expect("WC weights");
    let edges = graph.num_edges();

    // Cache capacity 0 disables result caching outright: the same
    // question runs twice back to back — observability on, then off —
    // and both must compute (timed_query asserts it).
    let engine = SharedEngine::new()
        .with_query_threads(1)
        .with_cache_capacity(0);
    engine.load_graph(graph.clone(), "bench-pr8".into());

    eprintln!("priming the theta={} pool …", cfg.theta);
    let pool_start = Instant::now();
    engine.ensure_pool(cfg.theta, 7).expect("pool");
    let pool_build_ms = pool_start.elapsed().as_millis();
    eprintln!("pool resident in {pool_build_ms}ms");

    let batch: Vec<Query> = (0..cfg.batch as u64)
        .map(|k| distinct_query(cfg.n, k))
        .collect();
    for k in 1_000..1_000 + cfg.batch as u64 / 2 {
        let warmup = distinct_query(cfg.n, k);
        engine.set_observability(k % 2 == 0);
        timed_query(&engine, &warmup);
    }

    // ---- Timed trials ------------------------------------------------------
    // Each question runs twice back to back — observability on, then off
    // (order alternating by question and trial) — so the two
    // measurements of a pair share whatever the box was doing in that
    // ~300ms window. The per-question minimum across trials is what gets
    // summed: a background-load spike hits one question of one trial, not
    // the estimate. Coarser schemes could not resolve a 3% bound on a
    // busy box — batch-level timing varied 2.7× trial to trial, and
    // pass-level alternation let a quiet spell land entirely on one
    // config.
    let mut best_on = vec![f64::INFINITY; batch.len()];
    let mut best_off = vec![f64::INFINITY; batch.len()];
    let mut answers_on = Vec::new();
    let mut answers_off = Vec::new();
    for trial in 0..cfg.trials {
        answers_on.clear();
        answers_off.clear();
        let mut trial_on = 0.0;
        let mut trial_off = 0.0;
        for (i, query) in batch.iter().enumerate() {
            let mut secs_on = f64::INFINITY;
            let mut secs_off = f64::INFINITY;
            let (ans_on, ans_off) = if (trial + i) % 2 == 0 {
                let a = timed_with(&engine, query, true, &mut secs_on);
                let b = timed_with(&engine, query, false, &mut secs_off);
                (a, b)
            } else {
                let b = timed_with(&engine, query, false, &mut secs_off);
                let a = timed_with(&engine, query, true, &mut secs_on);
                (a, b)
            };
            best_on[i] = best_on[i].min(secs_on);
            best_off[i] = best_off[i].min(secs_off);
            trial_on += secs_on;
            trial_off += secs_off;
            answers_on.push(ans_on);
            answers_off.push(ans_off);
        }
        eprintln!(
            "trial {trial}: instrumented {:.1}ms  uninstrumented {:.1}ms  ratio {:.4}",
            trial_on * 1e3,
            trial_off * 1e3,
            trial_on / trial_off
        );
    }
    let t_on: f64 = best_on.iter().sum();
    let t_off: f64 = best_off.iter().sum();
    let overhead = t_on / t_off - 1.0;
    eprintln!(
        "overhead: best {:.1}ms vs best {:.1}ms → {:+.2}% (bound {:.1}%)",
        t_on * 1e3,
        t_off * 1e3,
        overhead * 100.0,
        cfg.max_overhead * 100.0
    );
    assert!(
        overhead <= cfg.max_overhead,
        "observability overhead {:.2}% exceeds the {:.1}% budget",
        overhead * 100.0,
        cfg.max_overhead * 100.0
    );

    // ---- Byte identity: timed vs untimed vs the serial engine --------------
    assert_eq!(
        answers_on, answers_off,
        "instrumented and uninstrumented answers must be byte-identical"
    );
    let mut serial = Engine::new().with_threads(1);
    serial.load_graph(graph, "bench-pr8".into());
    serial.build_pool(cfg.theta, 7).expect("serial pool");
    let oracle_checks = batch.len().min(6);
    for (query, expect) in batch.iter().zip(&answers_on).take(oracle_checks) {
        let result = serial.query(query).expect("serial query");
        let blockers: Vec<u32> = result.blockers.iter().map(|b| b.raw()).collect();
        assert_eq!(
            (&blockers, &result.estimated_spread),
            (&expect.0, &expect.1),
            "serial oracle diverged on {query:?}"
        );
    }
    eprintln!(
        "byte identity holds: {} answers, {} re-checked against the serial engine",
        answers_on.len(),
        oracle_checks
    );

    // ---- Per-phase breakdown + trace-sum accounting ------------------------
    // One fresh heavy question (budget 4) with phases attached; its phase
    // times must sum to within 10% of its reported elapsed time.
    engine.set_observability(true);
    let mut probe = distinct_query(cfg.n, 9_999);
    probe.budget = 4;
    let traced = engine.query(&probe).expect("traced probe");
    let phases = traced.phases.expect("observability is on");
    let phase_sum_us = phases.total_us();
    let elapsed_us = traced.elapsed.as_micros() as u64;
    let ratio = phase_sum_us as f64 / elapsed_us as f64;
    eprintln!(
        "trace accounting: phases sum {phase_sum_us}µs vs elapsed {elapsed_us}µs (ratio {ratio:.3})"
    );
    assert!(
        (0.9..=1.1).contains(&ratio),
        "phase sum must be within 10% of the elapsed time (got {ratio:.3})"
    );

    // ---- Emit BENCH_PR8.json ----------------------------------------------
    let out_dir = std::env::var("IMIN_BENCH_OUT").unwrap_or_else(|_| ".".into());
    std::fs::create_dir_all(&out_dir).expect("create output dir");
    let path = std::path::Path::new(&out_dir).join("BENCH_PR8.json");
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"pr\": 8,\n");
    json.push_str("  \"benchmark\": \"observability_overhead\",\n");
    json.push_str("  \"description\": \"distinct-query batch throughput with phase tracing + histograms on vs off (runtime set_observability toggle, one engine, one resident pool), plus the per-phase breakdown of one computed query (bench_pr8, in-process)\",\n");
    json.push_str(&format!(
        "  \"graph\": {{ \"generator\": \"preferential_attachment\", \"model\": \"WC\", \"vertices\": {}, \"edges\": {edges} }},\n",
        cfg.n
    ));
    json.push_str(&format!(
        "  \"theta\": {},\n  \"batch\": {},\n  \"trials\": {},\n  \"query_threads\": 1,\n  \"smoke\": {},\n",
        cfg.theta, cfg.batch, cfg.trials, cfg.smoke
    ));
    json.push_str(&format!("  \"pool_build_ms\": {pool_build_ms},\n"));
    json.push_str(&format!(
        "  \"instrumented_ms\": {:.3},\n  \"uninstrumented_ms\": {:.3},\n",
        t_on * 1e3,
        t_off * 1e3
    ));
    json.push_str(&format!(
        "  \"overhead_pct\": {:.3},\n  \"overhead_bound_pct\": {:.1},\n",
        overhead * 100.0,
        cfg.max_overhead * 100.0
    ));
    json.push_str(&format!(
        "  \"byte_identical\": {{ \"instrumented_vs_uninstrumented\": {}, \"vs_serial_engine\": {oracle_checks} }},\n",
        answers_on.len()
    ));
    json.push_str(&format!(
        "  \"trace_accounting\": {{ \"budget\": 4, \"phase_sum_us\": {phase_sum_us}, \"elapsed_us\": {elapsed_us}, \"ratio\": {ratio:.4} }},\n"
    ));
    json.push_str("  \"phase_breakdown_us\": {\n");
    for (i, phase) in PHASES.iter().enumerate() {
        json.push_str(&format!(
            "    \"{}\": {}{}\n",
            phase.name(),
            phases.get(*phase),
            if i + 1 < PHASES.len() { "," } else { "" }
        ));
    }
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"methodology\": \"same {} globally-distinct two-seed budget-2 questions through one engine, each question timed twice back to back per trial — observability toggled on/off at runtime in alternating order, same resident pool so memory layout is identical — over {} trials, result cache disabled and every timed answer asserted computed; overhead = sum of per-question minima across trials, instrumented / uninstrumented - 1 (background-load spikes hit single samples, not the estimate); phase breakdown is one fresh budget-4 question at theta={}\"\n",
        cfg.batch, cfg.trials, cfg.theta
    ));
    json.push_str("}\n");
    let mut file = std::fs::File::create(&path).expect("create BENCH_PR8.json");
    file.write_all(json.as_bytes())
        .expect("write BENCH_PR8.json");
    println!("wrote {}", path.display());
}
