//! Regenerates Figure 9: running time of AG and GR as the budget grows, on
//! the Facebook and DBLP stand-ins under both probability models.
use imin_bench::{paper_models, BenchSettings};
use imin_datasets::Dataset;
fn main() {
    let settings = BenchSettings::from_env();
    for model in paper_models(settings.seed) {
        for (dataset, budgets) in [
            (Dataset::Facebook, vec![1usize, 100, 200, 300, 400]),
            (Dataset::Dblp, vec![1usize, 20, 40, 60, 80, 100]),
        ] {
            println!(
                "== Figure 9: running time vs budget ({} under {}) ==",
                dataset.spec().name,
                model.label()
            );
            imin_bench::experiments::budget_sweep(dataset, model, &budgets, &settings).emit(
                &format!(
                    "fig9_budget_{}_{}",
                    dataset.spec().abbrev.to_lowercase(),
                    model.label().to_lowercase()
                ),
            );
        }
    }
}
