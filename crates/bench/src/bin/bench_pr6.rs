//! PR 6 load harness: qps / p50 / p99 of the concurrent serving path.
//!
//! Boots an in-process `imin-serve` (or targets a running one via
//! `IMIN_PR6_ADDR`), primes the 50 000-vertex WC pool **over the wire**,
//! and then drives it with N concurrent client threads through four
//! workloads:
//!
//! * **distinct** — every request is a never-before-seen question: pure
//!   compute throughput, the workload that must scale with clients.
//! * **identical** — every request is the same question: cache + wire
//!   throughput.
//! * **mixed** — 50% one hot question / 30% a small warm set / 20% unique,
//!   the repeated-overlapping-query profile of containment serving.
//! * **coalesce bursts** — all clients fire the *same fresh* question
//!   simultaneously (barrier), proving single-flight coalescing: one
//!   computation per round, `coalesced` counter strictly increasing.
//!
//! A 32-way stress phase then replays its mixed schedule against a fresh
//! single-threaded [`Engine`] oracle and asserts every `blockers=` /
//! `spread=` pair is **byte-identical** — concurrency must be invisible in
//! the answers. Admission control is asserted quiet throughout
//! (`rejected=0` when the budget is not oversubscribed).
//!
//! Emits `BENCH_PR6.json` in the repository root (override the directory
//! with `IMIN_BENCH_OUT`). Knobs (env): `IMIN_PR6_N`, `IMIN_PR6_THETA`,
//! `IMIN_PR6_BUDGET`, `IMIN_PR6_CLIENTS` (comma list), `IMIN_PR6_WARMUP_MS`,
//! `IMIN_PR6_WINDOW_MS`, `IMIN_PR6_STRESS_CLIENTS`, `IMIN_PR6_MIN_SPEEDUP`,
//! `IMIN_PR6_SMOKE=1` (small CI preset), `IMIN_PR6_ADDR` (external server).
//!
//! The 8-client ≥ 3× scaling assertion is enforced only when the host has
//! ≥ 4 cores and the run is not a smoke run — client-level parallelism
//! cannot beat 1× on a single-core box, so there the harness asserts a
//! no-collapse floor instead and records the skip in `methodology`.
//!
//! Run with: `cargo run --release -p imin-bench --bin bench_pr6`

use imin_diffusion::ProbabilityModel;
use imin_engine::protocol::{parse_request, payload_field, payload_fields, Request};
use imin_engine::{Client, Engine, Server, SharedEngine};
use imin_graph::{generators, DiGraph};
use std::collections::HashMap;
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

struct Cfg {
    n: usize,
    theta: usize,
    budget: usize,
    clients: Vec<usize>,
    warmup_ms: u64,
    window_ms: u64,
    stress_clients: usize,
    min_speedup: f64,
    smoke: bool,
    addr: Option<String>,
}

fn env_num<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

impl Cfg {
    fn from_env() -> Cfg {
        let smoke = std::env::var("IMIN_PR6_SMOKE")
            .map(|v| v == "1")
            .unwrap_or(false);
        let (n, theta, warmup_ms, window_ms, clients, stress) = if smoke {
            (3_000, 300, 300, 1_200, "1,4".to_string(), 8)
        } else {
            (50_000, 2_000, 1_500, 6_000, "1,4,8,16".to_string(), 32)
        };
        let clients = std::env::var("IMIN_PR6_CLIENTS")
            .unwrap_or(clients)
            .split(',')
            .filter_map(|t| t.trim().parse().ok())
            .collect();
        Cfg {
            n: env_num("IMIN_PR6_N", n),
            theta: env_num("IMIN_PR6_THETA", theta),
            budget: env_num("IMIN_PR6_BUDGET", 2),
            clients,
            warmup_ms: env_num("IMIN_PR6_WARMUP_MS", warmup_ms),
            window_ms: env_num("IMIN_PR6_WINDOW_MS", window_ms),
            stress_clients: env_num("IMIN_PR6_STRESS_CLIENTS", stress),
            min_speedup: env_num("IMIN_PR6_MIN_SPEEDUP", 3.0),
            smoke,
            addr: std::env::var("IMIN_PR6_ADDR").ok(),
        }
    }
}

/// Reads the server's STATS counters into a map.
fn counters(client: &mut Client) -> HashMap<String, u64> {
    let payload = client.stats().expect("STATS");
    payload_fields(&payload)
        .into_iter()
        .filter_map(|(k, v)| v.parse().ok().map(|v| (k, v)))
        .collect()
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return f64::NAN;
    }
    let rank = ((sorted_ms.len() as f64) * p).ceil() as usize;
    sorted_ms[rank.clamp(1, sorted_ms.len()) - 1]
}

/// One measured load phase: `clients` threads each looping `make_line`
/// against the server, with a warmup period and then a steady measurement
/// window. Returns (qps, p50_ms, p99_ms, measured_requests).
fn load_phase(
    addr: &str,
    clients: usize,
    warmup: Duration,
    window: Duration,
    make_line: impl Fn(usize, u64) -> String + Send + Sync + 'static,
) -> (f64, f64, f64, usize) {
    let make_line = Arc::new(make_line);
    let measuring = Arc::new(AtomicBool::new(false));
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for t in 0..clients {
        let addr = addr.to_string();
        let make_line = Arc::clone(&make_line);
        let measuring = Arc::clone(&measuring);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(&addr).expect("load client connect");
            let mut latencies_ms = Vec::new();
            let mut k = 0u64;
            while !stop.load(SeqCst) {
                let line = make_line(t, k);
                k += 1;
                let start = Instant::now();
                let reply = client.send_raw(&line).expect("load reply");
                assert!(reply.starts_with("OK"), "{line} → {reply}");
                if measuring.load(SeqCst) {
                    latencies_ms.push(start.elapsed().as_secs_f64() * 1e3);
                }
            }
            latencies_ms
        }));
    }
    std::thread::sleep(warmup);
    measuring.store(true, SeqCst);
    let window_start = Instant::now();
    std::thread::sleep(window);
    // Freeze collection before stopping so every recorded request completed
    // inside (or overlapping) the window.
    measuring.store(false, SeqCst);
    let measured_secs = window_start.elapsed().as_secs_f64();
    stop.store(true, SeqCst);
    let mut all_ms: Vec<f64> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("load client thread"))
        .collect();
    all_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    let qps = all_ms.len() as f64 / measured_secs;
    (
        qps,
        percentile(&all_ms, 0.50),
        percentile(&all_ms, 0.99),
        all_ms.len(),
    )
}

/// A globally-unique two-seed question per (thread, counter): the distinct
/// workload must defeat both the LRU cache and the coalescing map so every
/// request costs real pool work.
fn unique_line(n: usize, budget: usize, t: usize, k: u64) -> String {
    let id = (t as u64).wrapping_mul(1_000_000_007).wrapping_add(k);
    let a = (id.wrapping_mul(2_654_435_761) % n as u64) as usize;
    let mut b = (a + 1 + (id as usize % (n - 1))) % n;
    if b == a {
        b = (a + 1) % n;
    }
    format!("QUERY ic seeds={a},{b} budget={budget} alg=advanced")
}

/// The stress schedule of one client: a hot question everybody shares,
/// warm questions shared by a few clients, and unique ones.
fn stress_schedule(thread: usize, budget: usize) -> Vec<String> {
    (0..6)
        .map(|i| match i % 3 {
            0 => "QUERY ic seeds=1 budget=3 alg=advanced".to_string(),
            1 => format!(
                "QUERY ic seeds={},8 budget={budget} alg=advanced",
                10 + thread % 4
            ),
            _ => format!(
                "QUERY ic seeds={} budget={budget} alg=replace",
                100 + thread * 6 + i
            ),
        })
        .collect()
}

fn main() {
    let cfg = Cfg::from_env();
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    eprintln!(
        "bench_pr6: n={} theta={} budget={} clients={:?} window={}ms cores={} smoke={}",
        cfg.n, cfg.theta, cfg.budget, cfg.clients, cfg.window_ms, cores, cfg.smoke
    );

    // ---- Server: external or in-process -----------------------------------
    let (addr, mode) = match &cfg.addr {
        Some(addr) => (addr.clone(), "external"),
        None => {
            let server =
                Server::with_shared("127.0.0.1:0", SharedEngine::new().with_query_threads(1))
                    .expect("bind");
            let addr = server.spawn().expect("spawn server");
            (addr.to_string(), "in-process")
        }
    };

    // ---- Prime over the wire ----------------------------------------------
    let mut admin = Client::connect(&addr).expect("admin connect");
    eprintln!("priming: LOAD pa n={} m0=4 seed=20230227 model=wc", cfg.n);
    let (_, edges) = admin.load_pa_wc(cfg.n, 4, 20230227).expect("LOAD");
    eprintln!("priming: POOL {} 7 …", cfg.theta);
    let pool_build_ms = admin.build_pool(cfg.theta, 7).expect("POOL");
    eprintln!("pool resident in {pool_build_ms}ms");
    let base = counters(&mut admin);

    // ---- Load phases: distinct + identical per client count ----------------
    let warmup = Duration::from_millis(cfg.warmup_ms);
    let window = Duration::from_millis(cfg.window_ms);
    let mut load_rows: Vec<(usize, &'static str, f64, f64, f64, usize)> = Vec::new();
    for &c in &cfg.clients {
        let (n, budget) = (cfg.n, cfg.budget);
        let (qps, p50, p99, reqs) = load_phase(&addr, c, warmup, window, move |t, k| {
            unique_line(n, budget, t, k)
        });
        eprintln!(
            "distinct  {c:>2} clients: {qps:>8.1} qps  p50 {p50:>8.2}ms  p99 {p99:>8.2}ms  ({reqs} reqs)"
        );
        load_rows.push((c, "distinct", qps, p50, p99, reqs));

        let budget = cfg.budget;
        let (qps, p50, p99, reqs) = load_phase(&addr, c, warmup, window, move |_, _| {
            format!("QUERY ic seeds=0 budget={budget} alg=advanced")
        });
        eprintln!(
            "identical {c:>2} clients: {qps:>8.1} qps  p50 {p50:>8.2}ms  p99 {p99:>8.2}ms  ({reqs} reqs)"
        );
        load_rows.push((c, "identical", qps, p50, p99, reqs));
    }

    // ---- Mixed workload at the largest client count ------------------------
    let max_clients = cfg.clients.iter().copied().max().unwrap_or(1);
    let (n, budget) = (cfg.n, cfg.budget);
    let (mixed_qps, mixed_p50, mixed_p99, mixed_reqs) =
        load_phase(&addr, max_clients, warmup, window, move |t, k| {
            match k % 10 {
                0..=4 => format!("QUERY ic seeds=0 budget={budget} alg=advanced"),
                5..=7 => format!(
                    "QUERY ic seeds={} budget={budget} alg=advanced",
                    2 + (t + k as usize) % 8
                ),
                _ => unique_line(n, budget, t, k),
            }
        });
    eprintln!(
        "mixed     {max_clients:>2} clients: {mixed_qps:>8.1} qps  p50 {mixed_p50:>8.2}ms  p99 {mixed_p99:>8.2}ms  ({mixed_reqs} reqs)"
    );

    // ---- Coalesce bursts ---------------------------------------------------
    // All clients fire the *same fresh* heavy question simultaneously; one
    // thread must lead and the rest must ride along (coalesced or, if they
    // arrive just after the leader published, cache hits). On a single core
    // the OS can serialise an entire cheap round before the second
    // connection thread ever runs, so rounds repeat (fresh question each
    // time) until a coalesce is observed, up to a cap.
    let before_burst = counters(&mut admin);
    let burst_clients = max_clients.max(2);
    const BURST_MAX_ROUNDS: usize = 64;
    let mut burst_rounds = 0usize;
    let mut coalesced_delta = 0u64;
    {
        let mut clients: Vec<Client> = (0..burst_clients)
            .map(|_| Client::connect(&addr).expect("burst connect"))
            .collect();
        while burst_rounds < BURST_MAX_ROUNDS && coalesced_delta == 0 {
            let r = burst_rounds;
            let seeds: Vec<String> = (0..6)
                .map(|j| (cfg.n - 1 - r * 6 - j).to_string())
                .collect();
            let line = format!("QUERY ic seeds={} budget=4 alg=advanced", seeds.join(","));
            let barrier = Arc::new(Barrier::new(burst_clients));
            std::thread::scope(|scope| {
                for client in &mut clients {
                    let barrier = Arc::clone(&barrier);
                    let line = line.clone();
                    scope.spawn(move || {
                        barrier.wait();
                        let reply = client.send_raw(&line).expect("burst reply");
                        assert!(reply.starts_with("OK"), "{line} → {reply}");
                    });
                }
            });
            burst_rounds += 1;
            coalesced_delta = counters(&mut admin)["coalesced"] - before_burst["coalesced"];
        }
    }
    eprintln!(
        "coalesce bursts: {burst_clients} clients × {burst_rounds} round(s) → coalesced +{coalesced_delta}"
    );
    assert!(
        coalesced_delta > 0,
        "simultaneous identical queries must coalesce \
         (got +{coalesced_delta} after {burst_rounds} rounds)"
    );

    // ---- 32-way stress + serial-oracle byte parity -------------------------
    eprintln!(
        "stress: {} clients vs the serial oracle …",
        cfg.stress_clients
    );
    let mut handles = Vec::new();
    for t in 0..cfg.stress_clients {
        let addr = addr.clone();
        let budget = cfg.budget;
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(&addr).expect("stress connect");
            stress_schedule(t, budget)
                .into_iter()
                .map(|line| {
                    let reply = client.send_raw(&line).expect("stress reply");
                    assert!(reply.starts_with("OK"), "{line} → {reply}");
                    let payload = reply.strip_prefix("OK ").unwrap();
                    (
                        line,
                        payload_field(payload, "blockers").expect("blockers"),
                        payload_field(payload, "spread").expect("spread"),
                    )
                })
                .collect::<Vec<_>>()
        }));
    }
    let stress_answers: Vec<(String, String, String)> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("stress client"))
        .collect();

    eprintln!("building the serial oracle (same graph, same pool) …");
    let oracle_graph: DiGraph = ProbabilityModel::WeightedCascade
        .apply(
            &generators::preferential_attachment(cfg.n, 4, true, 1.0, 20230227)
                .expect("oracle topology"),
        )
        .expect("oracle WC");
    assert_eq!(
        oracle_graph.num_edges(),
        edges,
        "oracle graph must match the server's"
    );
    let mut oracle = Engine::new().with_threads(1);
    oracle.load_graph(oracle_graph, "oracle".into());
    oracle.build_pool(cfg.theta, 7).expect("oracle pool");
    for (line, blockers, spread) in &stress_answers {
        let Ok(Request::Query { query, .. }) = parse_request(line) else {
            panic!("stress line must parse: {line}");
        };
        let expect = oracle.query(&query).expect("oracle query");
        let expect_blockers = expect
            .blockers
            .iter()
            .map(|b| b.raw().to_string())
            .collect::<Vec<_>>()
            .join(",");
        let expect_spread = expect
            .estimated_spread
            .map(|s| format!("{s:.6}"))
            .unwrap_or_else(|| "nan".into());
        assert_eq!(
            (blockers.as_str(), spread.as_str()),
            (expect_blockers.as_str(), expect_spread.as_str()),
            "concurrent answer diverged from the serial oracle on {line}"
        );
    }
    eprintln!(
        "stress parity holds: {} answers byte-identical to the serial oracle",
        stress_answers.len()
    );

    // ---- End-of-run counter checks -----------------------------------------
    let end = counters(&mut admin);
    let total_queries = end["queries"] - base["queries"];
    assert_eq!(
        end["rejected"], 0,
        "nothing may be rejected when the budget is not oversubscribed"
    );
    assert_eq!(end["inflight"], 0, "in-flight gauge must return to zero");
    assert_eq!(
        end["queries"],
        end["cache_hits"] + end["coalesced"] + end["computed"] + end["rejected"],
        "hit/coalesced/computed/rejected must partition the queries"
    );

    // ---- Scaling assertion -------------------------------------------------
    let distinct_qps: HashMap<usize, f64> = load_rows
        .iter()
        .filter(|r| r.1 == "distinct")
        .map(|r| (r.0, r.2))
        .collect();
    let (speedup, asserted_min) = match (distinct_qps.get(&1), distinct_qps.get(&8)) {
        (Some(&one), Some(&eight)) if one > 0.0 => {
            let speedup = eight / one;
            if cores >= 4 && !cfg.smoke {
                assert!(
                    speedup >= cfg.min_speedup,
                    "8-client distinct throughput must be ≥{}× the 1-client baseline \
                     (got {speedup:.2}× — {eight:.1} vs {one:.1} qps)",
                    cfg.min_speedup
                );
                (Some(speedup), Some(cfg.min_speedup))
            } else {
                // One core cannot scale client-parallel compute; assert the
                // concurrency machinery at least does not collapse under it.
                assert!(
                    speedup >= 0.4,
                    "8-client throughput collapsed vs 1 client: {speedup:.2}×"
                );
                (Some(speedup), None)
            }
        }
        _ => (None, None),
    };
    if let Some(s) = speedup {
        eprintln!(
            "distinct scaling 8 vs 1 clients: {s:.2}× ({})",
            if asserted_min.is_some() {
                "asserted ≥3×"
            } else {
                "scaling assert skipped: <4 cores or smoke run"
            }
        );
    }

    let methodology = format!(
        "steady-state windows ({}ms warmup, {}ms measured) over a resident theta={} pool; \
         distinct workload uses globally-unique two-seed questions so every request computes; \
         latencies are client-observed wall clock over TCP loopback. Host has {cores} core(s): \
         the >=3x 8-vs-1-client assertion is {} (client-level parallelism cannot exceed 1x on a \
         single core; the no-collapse floor and byte-parity checks still ran).",
        cfg.warmup_ms,
        cfg.window_ms,
        cfg.theta,
        if asserted_min.is_some() {
            "enforced"
        } else {
            "recorded but not enforced"
        },
    );

    // ---- Emit BENCH_PR6.json ----------------------------------------------
    let out_dir = std::env::var("IMIN_BENCH_OUT").unwrap_or_else(|_| ".".into());
    std::fs::create_dir_all(&out_dir).expect("create output dir");
    let path = std::path::Path::new(&out_dir).join("BENCH_PR6.json");
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"pr\": 6,\n");
    json.push_str("  \"benchmark\": \"concurrent_serving\",\n");
    json.push_str("  \"description\": \"qps/p50/p99 of shared-pool parallel queries with single-flight coalescing and admission control (bench_pr6 load generator over TCP loopback)\",\n");
    json.push_str(&format!(
        "  \"graph\": {{ \"generator\": \"preferential_attachment\", \"model\": \"WC\", \"vertices\": {}, \"edges\": {edges} }},\n",
        cfg.n
    ));
    json.push_str(&format!(
        "  \"theta\": {},\n  \"budget\": {},\n  \"query_threads\": 1,\n  \"cores\": {cores},\n  \"mode\": \"{mode}\",\n  \"smoke\": {},\n",
        cfg.theta, cfg.budget, cfg.smoke
    ));
    json.push_str(&format!("  \"pool_build_ms\": {pool_build_ms},\n"));
    json.push_str("  \"load\": [\n");
    for (i, (c, workload, qps, p50, p99, reqs)) in load_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"clients\": {c}, \"workload\": \"{workload}\", \"qps\": {qps:.2}, \"p50_ms\": {p50:.3}, \"p99_ms\": {p99:.3}, \"requests\": {reqs} }}{}\n",
            if i + 1 < load_rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"mixed\": {{ \"clients\": {max_clients}, \"identical_pct\": 50, \"repeat_pct\": 30, \"unique_pct\": 20, \"qps\": {mixed_qps:.2}, \"p50_ms\": {mixed_p50:.3}, \"p99_ms\": {mixed_p99:.3}, \"requests\": {mixed_reqs} }},\n"
    ));
    json.push_str(&format!(
        "  \"coalesce_burst\": {{ \"clients\": {burst_clients}, \"rounds\": {burst_rounds}, \"coalesced_delta\": {coalesced_delta} }},\n"
    ));
    json.push_str(&format!(
        "  \"stress\": {{ \"clients\": {}, \"answers\": {}, \"byte_identical_to_serial_oracle\": true }},\n",
        cfg.stress_clients,
        stress_answers.len()
    ));
    json.push_str(&format!(
        "  \"counters\": {{ \"queries\": {total_queries}, \"cache_hits\": {}, \"coalesced\": {}, \"computed\": {}, \"rejected\": {} }},\n",
        end["cache_hits"], end["coalesced"], end["computed"], end["rejected"]
    ));
    json.push_str(&format!(
        "  \"distinct_scaling_8_vs_1\": {},\n",
        speedup
            .map(|s| format!("{s:.3}"))
            .unwrap_or_else(|| "null".into())
    ));
    json.push_str(&format!(
        "  \"scaling_assert_min\": {},\n",
        asserted_min
            .map(|m| format!("{m:.1}"))
            .unwrap_or_else(|| "null".into())
    ));
    json.push_str(&format!("  \"methodology\": \"{methodology}\"\n"));
    json.push_str("}\n");
    let mut file = std::fs::File::create(&path).expect("create BENCH_PR6.json");
    file.write_all(json.as_bytes())
        .expect("write BENCH_PR6.json");
    println!("wrote {}", path.display());
}
