//! Regenerates the §V-E extension experiment: GreedyReplace under the
//! linear-threshold triggering model.
use imin_bench::BenchSettings;
fn main() {
    let settings = BenchSettings::from_env();
    println!("== Extension (§V-E): GreedyReplace under the LT triggering model ==");
    imin_bench::experiments::triggering_extension(&settings).emit("ext_triggering");
}
