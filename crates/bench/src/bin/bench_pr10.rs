//! PR 10 intervention-family head-to-head: vertex blocking vs edge
//! blocking vs prebunking on the *same* WC cascades.
//!
//! Builds one WC reference graph and one forward live-edge [`SamplePool`],
//! then sweeps the containment budget for all three intervention families
//! through the same `AdvancedGreedy` solver entry point:
//!
//! * `intervene=vertex` — the paper's vertex blocking (dominator-tree
//!   greedy over the pooled realisations);
//! * `intervene=edge` — live-edge deletion with exact single-feeder
//!   credit, budget counted in edges;
//! * `intervene=prebunk:<alpha>` — per-vertex acceptance rescale with the
//!   deterministic coin-threshold thinning.
//!
//! Every reported spread is the family's *exact* residual spread w.r.t.
//! the shared pool (the estimators are exact by construction, so all three
//! families are judged by the same θ realisations — no estimator grades
//! its own homework with different randomness).
//!
//! Asserts, for every question and every family:
//!
//! * **monotonicity** — blocked spread is non-increasing in budget
//!   (greedy selections are prefix-consistent);
//! * **containment** — every blocked spread ≤ the unblocked baseline;
//! * **determinism** — selections and spreads bit-identical at 1 and 4
//!   threads.
//!
//! Knobs (env): `IMIN_PR10_N`, `IMIN_PR10_THETA`, `IMIN_PR10_QUERIES`,
//! `IMIN_PR10_ALPHA`, `IMIN_PR10_SMOKE=1` (small preset).
//!
//! Run with: `cargo run --release -p imin-bench --bin bench_pr10`

use imin_core::{AlgorithmKind, BlockerSelection, ContainmentRequest, Intervention, SamplePool};
use imin_diffusion::ProbabilityModel;
use imin_graph::{generators, DiGraph, VertexId};
use std::io::Write;
use std::time::Instant;

struct Cfg {
    n: usize,
    theta: usize,
    queries: usize,
    alpha: f64,
    smoke: bool,
}

fn env_num<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

impl Cfg {
    fn from_env() -> Cfg {
        let smoke = std::env::var("IMIN_PR10_SMOKE")
            .map(|v| v == "1")
            .unwrap_or(false);
        let (n, theta, queries) = if smoke {
            (3_000, 300, 3)
        } else {
            (50_000, 10_000, 6)
        };
        Cfg {
            n: env_num("IMIN_PR10_N", n),
            theta: env_num("IMIN_PR10_THETA", theta),
            queries: env_num("IMIN_PR10_QUERIES", queries),
            alpha: env_num("IMIN_PR10_ALPHA", 0.2),
            smoke,
        }
    }
}

const BUDGETS: &[usize] = &[1, 2, 4, 8];

/// The same globally-distinct two-seed derivation as bench_pr6/pr8/pr9.
fn distinct_seeds(n: usize, k: u64) -> Vec<VertexId> {
    let id = k.wrapping_mul(1_000_000_007);
    let a = (id.wrapping_mul(2_654_435_761) % n as u64) as usize;
    let mut b = (a + 1 + (id as usize % (n - 1))) % n;
    if b == a {
        b = (a + 1) % n;
    }
    vec![VertexId::new(a), VertexId::new(b)]
}

fn solve(
    graph: &DiGraph,
    pool: &SamplePool,
    seeds: &[VertexId],
    budget: usize,
    intervention: Intervention,
    threads: usize,
) -> (BlockerSelection, f64) {
    let request = ContainmentRequest::builder(graph)
        .seeds(seeds.iter().copied())
        .budget(budget)
        .intervention(intervention)
        .pooled_with_threads(pool, threads)
        .build()
        .expect("pooled request");
    let start = Instant::now();
    let sel = AlgorithmKind::AdvancedGreedy
        .solver()
        .solve(graph, &request)
        .expect("pooled solve");
    (sel, start.elapsed().as_secs_f64())
}

fn main() {
    let cfg = Cfg::from_env();
    eprintln!(
        "bench_pr10: n={} theta={} queries={} alpha={} smoke={}",
        cfg.n, cfg.theta, cfg.queries, cfg.alpha, cfg.smoke
    );

    eprintln!("building the WC reference graph …");
    let graph: DiGraph = ProbabilityModel::WeightedCascade
        .apply(
            &generators::preferential_attachment(cfg.n, 4, true, 1.0, 20230227).expect("topology"),
        )
        .expect("WC weights");
    let edges = graph.num_edges();

    eprintln!("building the forward pool (theta={}) …", cfg.theta);
    let start = Instant::now();
    let pool = SamplePool::build_with_threads(&graph, cfg.theta, 7, 4).expect("forward pool");
    let build_ms = start.elapsed().as_secs_f64() * 1e3;
    eprintln!(
        "pool: {build_ms:.0}ms, {} resident bytes",
        pool.memory_bytes()
    );

    let families = [
        ("vertex", Intervention::BlockVertices),
        ("edge", Intervention::BlockEdges),
        ("prebunk", Intervention::Prebunk { alpha: cfg.alpha }),
    ];

    // mean_spread[f][b]: mean residual spread of family f at BUDGETS[b].
    let mut mean_spread = [[0.0f64; 4]; 3];
    let mut mean_ms = [[0.0f64; 4]; 3];
    let mut mean_unblocked = 0.0f64;
    for k in 0..cfg.queries as u64 {
        let seeds = distinct_seeds(cfg.n, k);
        // Budget-1 vertex blocking run once to report the shared baseline:
        // average_reached before any pick equals the unblocked spread, and
        // every family's estimator is exact on the same pool.
        let (probe, _) = solve(
            &graph,
            &pool,
            &seeds,
            1,
            Intervention::Prebunk { alpha: 1.0 },
            4,
        );
        let base = probe.estimated_spread.expect("baseline spread");
        mean_unblocked += base / cfg.queries as f64;
        for (fi, (label, intervention)) in families.iter().enumerate() {
            let mut prev = f64::INFINITY;
            for (bi, &budget) in BUDGETS.iter().enumerate() {
                let (sel, secs) = solve(&graph, &pool, &seeds, budget, *intervention, 4);
                let spread = sel.estimated_spread.expect("exact pooled spread");
                // Determinism gate: bit-identical at 1 thread.
                let (again, _) = solve(&graph, &pool, &seeds, budget, *intervention, 1);
                assert_eq!(
                    (
                        sel.blockers.clone(),
                        sel.blocked_edges.clone(),
                        spread.to_bits()
                    ),
                    (
                        again.blockers,
                        again.blocked_edges,
                        again.estimated_spread.expect("spread").to_bits()
                    ),
                    "{label} selection diverged across thread counts (q{k} b={budget})"
                );
                assert!(
                    spread <= prev + 1e-9,
                    "{label} spread increased with budget (q{k} b={budget}: {spread} > {prev})"
                );
                assert!(
                    spread <= base + 1e-9,
                    "{label} spread exceeds the unblocked baseline (q{k} b={budget})"
                );
                prev = spread;
                mean_spread[fi][bi] += spread / cfg.queries as f64;
                mean_ms[fi][bi] += secs * 1e3 / cfg.queries as f64;
            }
        }
        eprintln!("q{k}: baseline {base:.2} done");
    }

    for (fi, (label, _)) in families.iter().enumerate() {
        eprintln!(
            "{label:>8}: spreads {:?} (budgets {BUDGETS:?})",
            mean_spread[fi].map(|s| (s * 100.0).round() / 100.0)
        );
    }

    // ---- Emit BENCH_PR10.json ---------------------------------------------
    let out_dir = std::env::var("IMIN_BENCH_OUT").unwrap_or_else(|_| ".".into());
    std::fs::create_dir_all(&out_dir).expect("create output dir");
    let path = std::path::Path::new(&out_dir).join("BENCH_PR10.json");
    let list = |v: &[f64]| {
        v.iter()
            .map(|x| format!("{x:.3}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"pr\": 10,\n");
    json.push_str("  \"benchmark\": \"intervention_families_vs_budget\",\n");
    json.push_str("  \"description\": \"blocked spread vs budget for vertex blocking, edge blocking and prebunking, all through AdvancedGreedy on one shared forward pool so every family is judged by the same theta WC realisations (bench_pr10, in-process)\",\n");
    json.push_str(&format!(
        "  \"graph\": {{ \"generator\": \"preferential_attachment\", \"model\": \"WC\", \"vertices\": {}, \"edges\": {edges} }},\n",
        cfg.n
    ));
    json.push_str(&format!(
        "  \"theta\": {}, \"queries\": {}, \"alpha\": {}, \"smoke\": {},\n",
        cfg.theta, cfg.queries, cfg.alpha, cfg.smoke
    ));
    json.push_str(&format!(
        "  \"budgets\": [{}],\n",
        BUDGETS
            .iter()
            .map(|b| b.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str(&format!(
        "  \"mean_unblocked_spread\": {mean_unblocked:.3},\n"
    ));
    json.push_str("  \"mean_blocked_spread\": {\n");
    for (fi, (label, _)) in families.iter().enumerate() {
        let comma = if fi + 1 < families.len() { "," } else { "" };
        json.push_str(&format!(
            "    \"{label}\": [{}]{comma}\n",
            list(&mean_spread[fi])
        ));
    }
    json.push_str("  },\n");
    json.push_str("  \"mean_select_ms\": {\n");
    for (fi, (label, _)) in families.iter().enumerate() {
        let comma = if fi + 1 < families.len() { "," } else { "" };
        json.push_str(&format!(
            "    \"{label}\": [{}]{comma}\n",
            list(&mean_ms[fi])
        ));
    }
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"methodology\": \"{} globally-distinct two-seed questions on one WC graph; pool RNG seed 7; budgets swept over {:?} for each family through the same AdvancedGreedy entry point; reported spreads are the exact residual average_reached over the shared pool; every selection re-solved at 1 thread and asserted bit-identical; prebunk uses alpha={} and the unblocked baseline is the alpha=1.0 no-op evaluation\"\n",
        cfg.queries, BUDGETS, cfg.alpha
    ));
    json.push_str("}\n");
    let mut file = std::fs::File::create(&path).expect("create BENCH_PR10.json");
    file.write_all(json.as_bytes())
        .expect("write BENCH_PR10.json");
    println!("wrote {}", path.display());
}
