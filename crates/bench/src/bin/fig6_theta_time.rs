//! Regenerates Figure 6: running time of GreedyReplace as θ varies
//! (same sweep as Figure 5; the time column is the figure's y-axis).
use imin_bench::BenchSettings;
fn main() {
    let settings = BenchSettings::from_env();
    let thetas = imin_bench::experiments::default_thetas(&settings);
    println!("== Figure 6: running time vs number of sampled graphs θ ==");
    imin_bench::experiments::theta_sweep(&settings, &thetas, 20).emit("fig6_theta_time");
}
