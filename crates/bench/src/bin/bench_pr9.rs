//! PR 9 reverse-sketch head-to-head: the `Sketch` backend must buy its
//! keep against the resident forward pool.
//!
//! Builds one WC reference graph (50k vertices by default; `IMIN_PR9_N`
//! scales it up to the 1M-vertex configuration of the paper's large runs),
//! then materialises **both** estimator backends side by side:
//!
//! * the forward live-edge [`SamplePool`] at θ forward samples — the
//!   backend AdvancedGreedy / GreedyReplace re-root per query, and the
//!   ground truth every selection is judged by;
//! * the reverse-reachable [`SketchPool`] at θ_r sketches — the backend
//!   `ris-greedy` covers with CELF.
//!
//! Measures and emits `BENCH_PR9.json` (`IMIN_BENCH_OUT` overrides the
//! directory): build wall-clock, resident bytes, per-query selection
//! latency, and blocked-spread quality — the spread that *remains* after
//! applying each algorithm's blockers, always evaluated on the forward
//! pool so the comparison cannot be gamed by the sketch estimator grading
//! its own homework.
//!
//! Asserts (full preset; the smoke preset only checks the harness):
//!
//! * **build time** — sketch pool builds in ≤ 0.5× the forward pool's
//!   wall-clock;
//! * **resident bytes** — sketch pool occupies ≤ 0.5× the forward pool's
//!   raw (uncompressed-equivalent) bytes;
//! * **quality** — mean sketch-greedy blocked spread within 5% of mean
//!   AdvancedGreedy blocked spread;
//! * **determinism** — sketch selections bit-identical at 1, 2 and 8
//!   threads, for every question.
//!
//! Knobs (env): `IMIN_PR9_N`, `IMIN_PR9_THETA`, `IMIN_PR9_THETA_R`,
//! `IMIN_PR9_QUERIES`, `IMIN_PR9_SMOKE=1` (small preset).
//!
//! Run with: `cargo run --release -p imin-bench --bin bench_pr9`

use imin_core::pool::{pooled_decrease_in, with_pool_workspace};
use imin_core::{AlgorithmKind, BlockerSelection, ContainmentRequest, SamplePool, SketchPool};
use imin_diffusion::ProbabilityModel;
use imin_graph::{generators, DiGraph, VertexId};
use std::io::Write;
use std::time::Instant;

struct Cfg {
    n: usize,
    theta: usize,
    theta_r: usize,
    queries: usize,
    budget: usize,
    smoke: bool,
}

fn env_num<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

impl Cfg {
    fn from_env() -> Cfg {
        let smoke = std::env::var("IMIN_PR9_SMOKE")
            .map(|v| v == "1")
            .unwrap_or(false);
        // θ_r is deliberately generous: reverse WC sketches are tiny
        // (expected size is the mean in-reachability, a small constant),
        // so 20 sketches per forward sample still undercuts the forward
        // pool on both build time and bytes by a wide margin.
        let (n, theta, theta_r, queries) = if smoke {
            (3_000, 300, 6_000, 4)
        } else {
            (50_000, 10_000, 200_000, 8)
        };
        Cfg {
            n: env_num("IMIN_PR9_N", n),
            theta: env_num("IMIN_PR9_THETA", theta),
            theta_r: env_num("IMIN_PR9_THETA_R", theta_r),
            queries: env_num("IMIN_PR9_QUERIES", queries),
            budget: 8,
            smoke,
        }
    }
}

/// The same globally-distinct two-seed derivation as bench_pr6/pr8, so the
/// quality comparison averages over genuinely different questions.
fn distinct_seeds(n: usize, k: u64) -> Vec<VertexId> {
    let id = k.wrapping_mul(1_000_000_007);
    let a = (id.wrapping_mul(2_654_435_761) % n as u64) as usize;
    let mut b = (a + 1 + (id as usize % (n - 1))) % n;
    if b == a {
        b = (a + 1) % n;
    }
    vec![VertexId::new(a), VertexId::new(b)]
}

/// Remaining (blocked) spread of a selection, on the forward pool.
fn forward_blocked_spread(pool: &SamplePool, seeds: &[VertexId], blockers: &[VertexId]) -> f64 {
    let mut blocked = vec![false; pool.num_vertices()];
    for b in blockers {
        blocked[b.index()] = true;
    }
    with_pool_workspace(|ws| pooled_decrease_in(pool, seeds, &blocked, 4, ws))
        .expect("forward evaluation")
        .average_reached
}

fn solve_pooled(
    graph: &DiGraph,
    pool: &SamplePool,
    kind: AlgorithmKind,
    seeds: &[VertexId],
    budget: usize,
) -> (BlockerSelection, f64) {
    let request = ContainmentRequest::builder(graph)
        .seeds(seeds.iter().copied())
        .budget(budget)
        .pooled_with_threads(pool, 4)
        .build()
        .expect("pooled request");
    let start = Instant::now();
    let sel = kind.solver().solve(graph, &request).expect("pooled solve");
    (sel, start.elapsed().as_secs_f64())
}

fn solve_sketch(
    graph: &DiGraph,
    pool: &SketchPool,
    seeds: &[VertexId],
    budget: usize,
    threads: usize,
) -> (BlockerSelection, f64) {
    let request = ContainmentRequest::builder(graph)
        .seeds(seeds.iter().copied())
        .budget(budget)
        .sketch_pooled(pool, threads)
        .build()
        .expect("sketch request");
    let start = Instant::now();
    let sel = AlgorithmKind::RisGreedy
        .solver()
        .solve(graph, &request)
        .expect("sketch solve");
    (sel, start.elapsed().as_secs_f64())
}

fn main() {
    let cfg = Cfg::from_env();
    eprintln!(
        "bench_pr9: n={} theta={} theta_r={} queries={} smoke={}",
        cfg.n, cfg.theta, cfg.theta_r, cfg.queries, cfg.smoke
    );

    eprintln!("building the WC reference graph …");
    let graph: DiGraph = ProbabilityModel::WeightedCascade
        .apply(
            &generators::preferential_attachment(cfg.n, 4, true, 1.0, 20230227).expect("topology"),
        )
        .expect("WC weights");
    let edges = graph.num_edges();

    // ---- Build both backends ----------------------------------------------
    eprintln!("building the forward pool (theta={}) …", cfg.theta);
    let start = Instant::now();
    let fwd = SamplePool::build_with_threads(&graph, cfg.theta, 7, 4).expect("forward pool");
    let fwd_build_ms = start.elapsed().as_secs_f64() * 1e3;
    let fwd_raw_bytes = fwd.raw_equivalent_bytes();
    eprintln!(
        "forward pool: {fwd_build_ms:.0}ms, {} resident bytes ({fwd_raw_bytes} raw-equivalent)",
        fwd.memory_bytes()
    );

    eprintln!("building the sketch pool (theta_r={}) …", cfg.theta_r);
    let start = Instant::now();
    let sketch = SketchPool::build_with_threads(&graph, cfg.theta_r, 7, 4).expect("sketch pool");
    let sketch_build_ms = start.elapsed().as_secs_f64() * 1e3;
    let sketch_bytes = sketch.memory_bytes();
    eprintln!(
        "sketch pool: {sketch_build_ms:.0}ms, {sketch_bytes} bytes, {} members (avg {:.2}/sketch)",
        sketch.total_members(),
        sketch.avg_sketch_size()
    );

    let build_ratio = sketch_build_ms / fwd_build_ms;
    let bytes_ratio = sketch_bytes as f64 / fwd_raw_bytes as f64;

    // ---- Per-question head-to-head ----------------------------------------
    let mut ag_spreads = Vec::new();
    let mut gr_spreads = Vec::new();
    let mut ris_spreads = Vec::new();
    let mut unblocked = Vec::new();
    let mut ag_secs = Vec::new();
    let mut gr_secs = Vec::new();
    let mut ris_secs = Vec::new();
    for k in 0..cfg.queries as u64 {
        let seeds = distinct_seeds(cfg.n, k);
        let (ag, t_ag) = solve_pooled(
            &graph,
            &fwd,
            AlgorithmKind::AdvancedGreedy,
            &seeds,
            cfg.budget,
        );
        let (gr, t_gr) = solve_pooled(
            &graph,
            &fwd,
            AlgorithmKind::GreedyReplace,
            &seeds,
            cfg.budget,
        );
        let (ris, t_ris) = solve_sketch(&graph, &sketch, &seeds, cfg.budget, 4);
        // Determinism gate: every question, bit-identical at 1/2/8 threads.
        for threads in [1usize, 2, 8] {
            let (again, _) = solve_sketch(&graph, &sketch, &seeds, cfg.budget, threads);
            assert_eq!(
                ris.blockers, again.blockers,
                "sketch selection diverged at {threads} threads (question {k})"
            );
        }
        let base = forward_blocked_spread(&fwd, &seeds, &[]);
        let s_ag = forward_blocked_spread(&fwd, &seeds, &ag.blockers);
        let s_gr = forward_blocked_spread(&fwd, &seeds, &gr.blockers);
        let s_ris = forward_blocked_spread(&fwd, &seeds, &ris.blockers);
        eprintln!(
            "q{k}: spread {base:.1} → AG {s_ag:.1} ({:.1}ms) | GR {s_gr:.1} ({:.1}ms) | RIS {s_ris:.1} ({:.1}ms)",
            t_ag * 1e3,
            t_gr * 1e3,
            t_ris * 1e3
        );
        unblocked.push(base);
        ag_spreads.push(s_ag);
        gr_spreads.push(s_gr);
        ris_spreads.push(s_ris);
        ag_secs.push(t_ag);
        gr_secs.push(t_gr);
        ris_secs.push(t_ris);
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let quality_ratio = mean(&ris_spreads) / mean(&ag_spreads);
    eprintln!(
        "mean blocked spread: AG {:.2}  GR {:.2}  RIS {:.2} (ratio RIS/AG {quality_ratio:.4})",
        mean(&ag_spreads),
        mean(&gr_spreads),
        mean(&ris_spreads)
    );
    eprintln!(
        "mean selection latency: AG {:.1}ms  GR {:.1}ms  RIS {:.1}ms  |  build {build_ratio:.3}× bytes {bytes_ratio:.3}×",
        mean(&ag_secs) * 1e3,
        mean(&gr_secs) * 1e3,
        mean(&ris_secs) * 1e3
    );

    // The acceptance gates are defined at the benchmark scale; the smoke
    // preset (tiny graph, tiny pools) only proves the harness runs.
    let (max_build, max_bytes, max_quality) = if cfg.smoke {
        (2.0, 1.0, 1.25)
    } else {
        (0.5, 0.5, 1.05)
    };
    assert!(
        build_ratio <= max_build,
        "sketch build {build_ratio:.3}× exceeds the {max_build}× bound"
    );
    assert!(
        bytes_ratio <= max_bytes,
        "sketch bytes {bytes_ratio:.3}× exceeds the {max_bytes}× bound"
    );
    assert!(
        quality_ratio <= max_quality,
        "sketch blocked-spread ratio {quality_ratio:.4} exceeds the {max_quality} bound"
    );

    // ---- Emit BENCH_PR9.json ----------------------------------------------
    let out_dir = std::env::var("IMIN_BENCH_OUT").unwrap_or_else(|_| ".".into());
    std::fs::create_dir_all(&out_dir).expect("create output dir");
    let path = std::path::Path::new(&out_dir).join("BENCH_PR9.json");
    let list = |v: &[f64]| {
        v.iter()
            .map(|x| format!("{x:.3}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"pr\": 9,\n");
    json.push_str("  \"benchmark\": \"sketch_vs_forward_backend\",\n");
    json.push_str("  \"description\": \"reverse-reachable sketch pool (ris-greedy/CELF) vs resident forward live-edge pool (AdvancedGreedy/GreedyReplace): build wall-clock, resident bytes, selection latency and blocked-spread quality, all selections judged on the forward pool (bench_pr9, in-process)\",\n");
    json.push_str(&format!(
        "  \"graph\": {{ \"generator\": \"preferential_attachment\", \"model\": \"WC\", \"vertices\": {}, \"edges\": {edges} }},\n",
        cfg.n
    ));
    json.push_str(&format!(
        "  \"queries\": {},\n  \"budget\": {},\n  \"smoke\": {},\n",
        cfg.queries, cfg.budget, cfg.smoke
    ));
    json.push_str(&format!(
        "  \"forward\": {{ \"theta\": {}, \"build_ms\": {fwd_build_ms:.1}, \"resident_bytes\": {}, \"raw_equivalent_bytes\": {fwd_raw_bytes}, \"mean_select_ms\": {:.3} }},\n",
        cfg.theta,
        fwd.memory_bytes(),
        mean(&ag_secs) * 1e3
    ));
    json.push_str(&format!(
        "  \"sketch\": {{ \"theta_r\": {}, \"build_ms\": {sketch_build_ms:.1}, \"resident_bytes\": {sketch_bytes}, \"members\": {}, \"avg_sketch_size\": {:.3}, \"mean_select_ms\": {:.3} }},\n",
        cfg.theta_r,
        sketch.total_members(),
        sketch.avg_sketch_size(),
        mean(&ris_secs) * 1e3
    ));
    json.push_str(&format!(
        "  \"ratios\": {{ \"build\": {build_ratio:.4}, \"bytes\": {bytes_ratio:.4}, \"blocked_spread_ris_over_ag\": {quality_ratio:.4} }},\n"
    ));
    json.push_str(&format!(
        "  \"bounds\": {{ \"build\": {max_build}, \"bytes\": {max_bytes}, \"blocked_spread\": {max_quality} }},\n"
    ));
    json.push_str(&format!(
        "  \"blocked_spread\": {{ \"unblocked\": [{}], \"advanced_greedy\": [{}], \"greedy_replace\": [{}], \"ris_greedy\": [{}] }},\n",
        list(&unblocked),
        list(&ag_spreads),
        list(&gr_spreads),
        list(&ris_spreads)
    ));
    json.push_str(&format!(
        "  \"select_ms\": {{ \"advanced_greedy\": [{}], \"greedy_replace\": [{}], \"ris_greedy\": [{}] }},\n",
        list(&ag_secs.iter().map(|s| s * 1e3).collect::<Vec<_>>()),
        list(&gr_secs.iter().map(|s| s * 1e3).collect::<Vec<_>>()),
        list(&ris_secs.iter().map(|s| s * 1e3).collect::<Vec<_>>())
    ));
    json.push_str(&format!(
        "  \"determinism\": {{ \"threads\": [1, 2, 8], \"bit_identical_questions\": {} }},\n",
        cfg.queries
    ));
    json.push_str(&format!(
        "  \"methodology\": \"{} globally-distinct two-seed budget-{} questions on one WC graph; both pools share RNG seed 7; every sketch selection re-solved at 1/2/8 threads and asserted bit-identical; blocked spread = average_reached of the forward pool's pooled estimator with the selection applied, so the sketch backend is graded by the forward backend's ground truth, never by its own estimator\"\n",
        cfg.queries, cfg.budget
    ));
    json.push_str("}\n");
    let mut file = std::fs::File::create(&path).expect("create BENCH_PR9.json");
    file.write_all(json.as_bytes())
        .expect("write BENCH_PR9.json");
    println!("wrote {}", path.display());
}
