//! Regenerates Figure 7: selection time of BG / AG / GR (budget 10) on all
//! datasets under the TR model.
use imin_bench::BenchSettings;
use imin_diffusion::ProbabilityModel;
fn main() {
    let settings = BenchSettings::from_env();
    println!("== Figure 7: time cost of BG / AG / GR (TR model, b = 10) ==");
    imin_bench::experiments::time_comparison(
        ProbabilityModel::Trivalency {
            seed: settings.seed,
        },
        &settings,
    )
    .emit("fig7_time_tr");
}
