//! Regenerates Figure 8: selection time of BG / AG / GR (budget 10) on all
//! datasets under the WC model.
use imin_bench::BenchSettings;
use imin_diffusion::ProbabilityModel;
fn main() {
    let settings = BenchSettings::from_env();
    println!("== Figure 8: time cost of BG / AG / GR (WC model, b = 10) ==");
    imin_bench::experiments::time_comparison(ProbabilityModel::WeightedCascade, &settings)
        .emit("fig8_time_wc");
}
