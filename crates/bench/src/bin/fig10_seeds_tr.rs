//! Regenerates Figure 10: GreedyReplace running time as the number of seeds
//! grows (1, 10, 100, 1000) under the TR model, budget 100.
use imin_bench::BenchSettings;
use imin_diffusion::ProbabilityModel;
fn main() {
    let settings = BenchSettings::from_env();
    println!("== Figure 10: running time vs number of seeds (TR model) ==");
    imin_bench::experiments::seeds_scalability(
        ProbabilityModel::Trivalency {
            seed: settings.seed,
        },
        &[1, 10, 100, 1000],
        &settings,
    )
    .emit("fig10_seeds_tr");
}
