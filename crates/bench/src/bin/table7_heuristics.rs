//! Regenerates Table VII: expected spread of RA / OD / AG / GR for budgets
//! 20..100 on all eight datasets under both the TR and WC models.
use imin_bench::{paper_models, BenchSettings};
fn main() {
    let settings = BenchSettings::from_env();
    let budgets: Vec<usize> = std::env::var("IMIN_BUDGETS")
        .ok()
        .map(|s| s.split(',').filter_map(|t| t.trim().parse().ok()).collect())
        .unwrap_or_else(|| vec![20, 40, 60, 80, 100]);
    for model in paper_models(settings.seed) {
        println!(
            "== Table VII ({} model): RA / OD / AG / GR ==",
            model.label()
        );
        imin_bench::experiments::heuristics_comparison(model, &budgets, &settings).emit(&format!(
            "table7_heuristics_{}",
            model.label().to_lowercase()
        ));
    }
}
