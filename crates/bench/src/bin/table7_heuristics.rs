//! Regenerates Table VII: expected spread of the selected algorithms
//! (default RA / OD / AG / GR) for budgets 20..100 on all eight datasets
//! under both the TR and WC models.
//!
//! `IMIN_ALGS` selects the columns by name — any spelling the
//! `imin_core::AlgorithmKind` registry accepts, e.g.
//! `IMIN_ALGS=ra,pagerank,degree,gr`.
use imin_bench::experiments::TABLE7_DEFAULT_ALGS;
use imin_bench::{algorithms_from_env, paper_models, BenchSettings};
fn main() {
    let settings = BenchSettings::from_env();
    let algorithms = algorithms_from_env("IMIN_ALGS", TABLE7_DEFAULT_ALGS);
    let budgets: Vec<usize> = std::env::var("IMIN_BUDGETS")
        .ok()
        .map(|s| s.split(',').filter_map(|t| t.trim().parse().ok()).collect())
        .unwrap_or_else(|| vec![20, 40, 60, 80, 100]);
    for model in paper_models(settings.seed) {
        let labels: Vec<&str> = algorithms.iter().map(|a| a.label()).collect();
        println!(
            "== Table VII ({} model): {} ==",
            model.label(),
            labels.join(" / ")
        );
        imin_bench::experiments::heuristics_comparison(model, &budgets, &algorithms, &settings)
            .emit(&format!(
                "table7_heuristics_{}",
                model.label().to_lowercase()
            ));
    }
}
