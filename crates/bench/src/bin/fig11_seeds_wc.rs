//! Regenerates Figure 11: GreedyReplace running time as the number of seeds
//! grows (1, 10, 100, 1000) under the WC model, budget 100.
use imin_bench::BenchSettings;
use imin_diffusion::ProbabilityModel;
fn main() {
    let settings = BenchSettings::from_env();
    println!("== Figure 11: running time vs number of seeds (WC model) ==");
    imin_bench::experiments::seeds_scalability(
        ProbabilityModel::WeightedCascade,
        &[1, 10, 100, 1000],
        &settings,
    )
    .emit("fig11_seeds_wc");
}
