//! Runs every experiment in sequence (toy table, exact comparison, θ sweep,
//! heuristics table, timing figures, budget/seed scalability, triggering
//! extension). Intended for `IMIN_SCALE=tiny` smoke runs; at larger scales
//! prefer running the individual binaries.
//!
//! `IMIN_ALGS` selects the heuristics-table columns by registry name, as
//! in `table7_heuristics`.
use imin_bench::experiments::TABLE7_DEFAULT_ALGS;
use imin_bench::{algorithms_from_env, paper_models, BenchSettings};
use imin_datasets::Dataset;
use imin_diffusion::ProbabilityModel;
fn main() {
    let settings = BenchSettings::from_env();
    let algorithms = algorithms_from_env("IMIN_ALGS", TABLE7_DEFAULT_ALGS);
    println!("settings: {settings:?}\n");
    imin_bench::experiments::table3_toy().emit("table3_toy");
    imin_bench::experiments::exact_vs_gr(
        ProbabilityModel::Trivalency {
            seed: settings.seed,
        },
        &settings,
    )
    .emit("table5_exact_tr");
    imin_bench::experiments::exact_vs_gr(ProbabilityModel::WeightedCascade, &settings)
        .emit("table6_exact_wc");
    let thetas = imin_bench::experiments::default_thetas(&settings);
    imin_bench::experiments::theta_sweep(&settings, &thetas, 20).emit("fig5_6_theta");
    for model in paper_models(settings.seed) {
        imin_bench::experiments::heuristics_comparison(
            model,
            &[20, 60, 100],
            &algorithms,
            &settings,
        )
        .emit(&format!(
            "table7_heuristics_{}",
            model.label().to_lowercase()
        ));
        imin_bench::experiments::time_comparison(model, &settings)
            .emit(&format!("fig7_8_time_{}", model.label().to_lowercase()));
        imin_bench::experiments::budget_sweep(
            Dataset::Facebook,
            model,
            &[1, 20, 60, 100],
            &settings,
        )
        .emit(&format!("fig9_budget_f_{}", model.label().to_lowercase()));
        imin_bench::experiments::seeds_scalability(model, &[1, 10, 100], &settings)
            .emit(&format!("fig10_11_seeds_{}", model.label().to_lowercase()));
    }
    imin_bench::experiments::triggering_extension(&settings).emit("ext_triggering");
    println!(
        "all experiment CSVs written under {:?}",
        imin_bench::experiments_dir()
    );
}
