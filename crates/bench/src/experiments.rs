//! Shared experiment runners. Every `src/bin/*` binary is a thin wrapper
//! around one of these functions, so the logic that regenerates a table or
//! figure lives in exactly one place and is unit-testable.

use crate::{draw_seeds, fmt_secs, prepare_instance, BenchSettings, Table};
use imin_core::exact_blocker::{exact_blocker_search, ExactSearchConfig, SpreadEvaluator};
use imin_core::triggering::{evaluate_triggering_spread, greedy_replace_triggering};
use imin_core::{Algorithm, AlgorithmConfig, ImninProblem};
use imin_datasets::extract::extract_many;
use imin_datasets::toy::{figure1_graph, V};
use imin_datasets::{Dataset, DatasetScale};
use imin_diffusion::triggering::LtTriggering;
use imin_diffusion::ProbabilityModel;
use std::time::Instant;

/// Table III: the toy graph of Figure 1 — Greedy (AG), OutNeighbors and
/// GreedyReplace for budgets 1 and 2, with exactly computed spreads.
pub fn table3_toy() -> Table {
    let (graph, seed) = figure1_graph();
    let problem = ImninProblem::new(&graph, vec![seed]).expect("toy problem");
    let config = AlgorithmConfig::fast_for_tests().with_theta(2_000);
    let mut table = Table::new(&["algorithm", "b", "blockers", "expected_spread"]);
    for b in [1usize, 2] {
        for (label, algorithm) in [
            ("Greedy", Algorithm::AdvancedGreedy),
            ("OutNeighbors", Algorithm::OutNeighbors),
            ("GreedyReplace", Algorithm::GreedyReplace),
        ] {
            let sel = problem.solve(algorithm, b, &config).expect("toy run");
            let spread = problem
                .evaluate_spread_exact(&sel.blockers, 20)
                .expect("toy evaluation");
            let blockers = sel
                .blockers
                .iter()
                .map(|v| format!("v{}", v.index() + 1))
                .collect::<Vec<_>>()
                .join("+");
            table.add_row(vec![
                label.to_string(),
                b.to_string(),
                blockers,
                format!("{spread:.2}"),
            ]);
        }
    }
    // Sanity anchor from Example 1: blocking v5 leaves a spread of 3.
    let mask_spread = problem
        .evaluate_spread_exact(&[V(5)], 20)
        .expect("toy evaluation");
    table.add_row(vec![
        "paper anchor: block v5".into(),
        "1".into(),
        "v5".into(),
        format!("{mask_spread:.2}"),
    ]);
    table
}

/// Tables V and VI: Exact vs GreedyReplace on ~100-vertex extracts of
/// EmailCore, budgets 1..=4, under the given probability model.
pub fn exact_vs_gr(model: ProbabilityModel, settings: &BenchSettings) -> Table {
    let (topology, _) = Dataset::EmailCore
        .load_or_generate(DatasetScale::Tiny)
        .expect("dataset");
    let graph = model.apply(&topology).expect("probability model");
    let extracts = extract_many(&graph, 3, 60, settings.seed).expect("extraction");
    let config = settings.algorithm_config();
    let mut table = Table::new(&[
        "b",
        "exact_spread",
        "gr_spread",
        "ratio_%",
        "exact_time_s",
        "gr_time_s",
    ]);
    for b in 1..=4usize {
        let mut exact_spread = 0.0;
        let mut gr_spread = 0.0;
        let mut exact_time = 0.0;
        let mut gr_time = 0.0;
        let mut used = 0usize;
        for extract in &extracts {
            let g = &extract.graph;
            let seeds = draw_seeds(g, 1, settings.seed);
            let problem = match ImninProblem::new(g, seeds.clone()) {
                Ok(p) => p,
                Err(_) => continue,
            };
            let merged = problem.merged();
            let forbidden: Vec<bool> = (0..merged.graph.num_vertices())
                .map(|i| !merged.is_valid_blocker(imin_graph::VertexId::new(i)))
                .collect();
            // Exact search with Monte-Carlo evaluation (the paper's Exact).
            let t0 = Instant::now();
            let exact = exact_blocker_search(
                &merged.graph,
                merged.super_seed,
                &forbidden,
                b,
                &ExactSearchConfig {
                    max_combinations: 500_000,
                    evaluator: SpreadEvaluator::MonteCarlo {
                        rounds: settings.mcs_rounds.min(500),
                    },
                    threads: config.threads,
                    seed: settings.seed,
                },
            );
            let exact = match exact {
                Ok(sel) => sel,
                Err(_) => continue,
            };
            exact_time += t0.elapsed().as_secs_f64();
            let t1 = Instant::now();
            let gr = problem
                .solve(Algorithm::GreedyReplace, b, &config)
                .expect("GR run");
            gr_time += t1.elapsed().as_secs_f64();
            exact_spread += problem
                .evaluate_spread(&exact.blockers, settings.mcs_rounds, settings.seed)
                .expect("evaluation");
            gr_spread += problem
                .evaluate_spread(&gr.blockers, settings.mcs_rounds, settings.seed)
                .expect("evaluation");
            used += 1;
        }
        if used == 0 {
            continue;
        }
        let (e, g) = (exact_spread / used as f64, gr_spread / used as f64);
        table.add_row(vec![
            b.to_string(),
            format!("{e:.3}"),
            format!("{g:.3}"),
            format!("{:.2}", 100.0 * e / g.max(1e-9)),
            format!("{:.3}", exact_time / used as f64),
            format!("{:.3}", gr_time / used as f64),
        ]);
    }
    table
}

/// Figures 5 and 6: effect of θ on GreedyReplace quality and running time.
/// One row per (dataset, θ) with the evaluated spread and the wall-clock
/// selection time.
pub fn theta_sweep(settings: &BenchSettings, thetas: &[usize], budget: usize) -> Table {
    let mut table = Table::new(&["dataset", "theta", "spread", "time_s"]);
    for &dataset in Dataset::all() {
        let instance = prepare_instance(
            dataset,
            ProbabilityModel::Trivalency {
                seed: settings.seed,
            },
            settings,
        );
        for &theta in thetas {
            let mut s = settings.clone();
            s.theta = theta;
            let run = crate::run_algorithm(&instance, Algorithm::GreedyReplace, budget, &s);
            table.add_row(vec![
                dataset.spec().abbrev.to_string(),
                theta.to_string(),
                format!("{:.3}", run.spread),
                fmt_secs(run.elapsed),
            ]);
        }
    }
    table
}

/// Table VII: expected spread of the given algorithms (default RA / OD /
/// AG / GR) for several budgets on every dataset under one probability
/// model. The algorithm list comes straight from the [`Algorithm`]
/// registry, so callers select columns by name (`IMIN_ALGS`) instead of a
/// hard-coded match.
pub fn heuristics_comparison(
    model: ProbabilityModel,
    budgets: &[usize],
    algorithms: &[Algorithm],
    settings: &BenchSettings,
) -> Table {
    let mut headers = vec!["dataset", "model", "b"];
    headers.extend(algorithms.iter().map(|a| a.label()));
    let mut table = Table::new(&headers);
    for &dataset in Dataset::all() {
        let instance = prepare_instance(dataset, model, settings);
        for &b in budgets {
            let mut cells = vec![
                dataset.spec().abbrev.to_string(),
                instance.model.to_string(),
                b.to_string(),
            ];
            for &algorithm in algorithms {
                let run = crate::run_algorithm(&instance, algorithm, b, settings);
                cells.push(format!("{:.3}", run.spread));
            }
            table.add_row(cells);
        }
    }
    table
}

/// The Table VII default column set: Rand, OutDegree, AdvancedGreedy,
/// GreedyReplace.
pub const TABLE7_DEFAULT_ALGS: &str = "ra,od,ag,gr";

/// Figures 7 and 8: selection time of BG / AG / GR with budget 10.
///
/// BaselineGreedy is only attempted when its estimated cost
/// (`b · n · r` cascade simulations) stays below a threshold derived from
/// the soft timeout; otherwise the row reports `TIMEOUT`, mirroring the
/// ">24h" entries of the paper.
pub fn time_comparison(model: ProbabilityModel, settings: &BenchSettings) -> Table {
    let budget = 10usize;
    let bg_rounds = settings.mcs_rounds.min(500);
    let mut table = Table::new(&["dataset", "model", "BG_time_s", "AG_time_s", "GR_time_s"]);
    for &dataset in Dataset::all() {
        let instance = prepare_instance(dataset, model, settings);
        let n = instance.problem.graph().num_vertices();
        let bg_cell = {
            let estimated_cascades = budget as u64 * n as u64 * bg_rounds as u64;
            let limit = 8_000_000u64 * settings.timeout.as_secs().max(1) / 120;
            if estimated_cascades <= limit {
                let mut s = settings.clone();
                s.mcs_rounds = bg_rounds;
                let run = crate::run_algorithm(&instance, Algorithm::BaselineGreedy, budget, &s);
                format!("{} (r={bg_rounds})", fmt_secs(run.elapsed))
            } else {
                "TIMEOUT".to_string()
            }
        };
        let ag = crate::run_algorithm(&instance, Algorithm::AdvancedGreedy, budget, settings);
        let gr = crate::run_algorithm(&instance, Algorithm::GreedyReplace, budget, settings);
        table.add_row(vec![
            dataset.spec().abbrev.to_string(),
            instance.model.to_string(),
            bg_cell,
            fmt_secs(ag.elapsed),
            fmt_secs(gr.elapsed),
        ]);
    }
    table
}

/// Figure 9: running time of AG and GR as the budget grows, on one dataset.
pub fn budget_sweep(
    dataset: Dataset,
    model: ProbabilityModel,
    budgets: &[usize],
    settings: &BenchSettings,
) -> Table {
    let instance = prepare_instance(dataset, model, settings);
    let mut table = Table::new(&["dataset", "model", "b", "AG_time_s", "GR_time_s"]);
    for &b in budgets {
        let ag = crate::run_algorithm(&instance, Algorithm::AdvancedGreedy, b, settings);
        let gr = crate::run_algorithm(&instance, Algorithm::GreedyReplace, b, settings);
        table.add_row(vec![
            dataset.spec().abbrev.to_string(),
            instance.model.to_string(),
            b.to_string(),
            fmt_secs(ag.elapsed),
            fmt_secs(gr.elapsed),
        ]);
    }
    table
}

/// Figures 10 and 11: GreedyReplace running time as the number of seeds
/// grows (1, 10, 100, 1000), with budget 100.
pub fn seeds_scalability(
    model: ProbabilityModel,
    seed_counts: &[usize],
    settings: &BenchSettings,
) -> Table {
    let budget = 100usize;
    let mut table = Table::new(&["dataset", "model", "num_seeds", "GR_time_s", "spread"]);
    for &dataset in Dataset::all() {
        let (topology, _) = dataset
            .load_or_generate(settings.scale)
            .expect("dataset generation");
        let graph = model.apply(&topology).expect("probability model");
        for &k in seed_counts {
            let k = k.min(graph.num_vertices() / 2);
            let seeds = draw_seeds(&graph, k, settings.seed ^ k as u64);
            let problem = ImninProblem::new(&graph, seeds).expect("problem");
            let config = settings.algorithm_config();
            let start = Instant::now();
            let sel = problem
                .solve(Algorithm::GreedyReplace, budget, &config)
                .expect("GR run");
            let elapsed = start.elapsed();
            let spread = problem
                .evaluate_spread(&sel.blockers, settings.mcs_rounds, settings.seed)
                .expect("evaluation");
            table.add_row(vec![
                dataset.spec().abbrev.to_string(),
                model.label().to_string(),
                k.to_string(),
                fmt_secs(elapsed),
                format!("{spread:.3}"),
            ]);
        }
    }
    table
}

/// §V-E extension: GreedyReplace under the LT triggering model on the toy
/// graph and the EmailCore stand-in, reporting spread before/after blocking.
pub fn triggering_extension(settings: &BenchSettings) -> Table {
    let mut table = Table::new(&["graph", "model", "b", "spread_before", "spread_after"]);
    let config = settings.algorithm_config();
    let mut run = |name: &str,
                   graph: &imin_graph::DiGraph,
                   seed: imin_graph::VertexId,
                   b: usize| {
        let forbidden: Vec<bool> = (0..graph.num_vertices())
            .map(|i| i == seed.index())
            .collect();
        let sel = greedy_replace_triggering(&LtTriggering, graph, seed, &forbidden, b, &config)
            .expect("triggering GR");
        let before =
            evaluate_triggering_spread(&LtTriggering, graph, &[seed], &[], 4_000, settings.seed)
                .expect("evaluation");
        let after = evaluate_triggering_spread(
            &LtTriggering,
            graph,
            &[seed],
            &sel.blockers,
            4_000,
            settings.seed,
        )
        .expect("evaluation");
        table.add_row(vec![
            name.to_string(),
            "LT".to_string(),
            b.to_string(),
            format!("{before:.3}"),
            format!("{after:.3}"),
        ]);
    };
    let (toy, toy_seed) = figure1_graph();
    run("figure1-toy", &toy, toy_seed, 2);
    let (ec, _) = Dataset::EmailCore
        .load_or_generate(DatasetScale::Tiny)
        .expect("dataset");
    let ec = ProbabilityModel::WeightedCascade.apply(&ec).expect("WC");
    let ec_seed = draw_seeds(&ec, 1, settings.seed)[0];
    run("email-core(tiny)", &ec, ec_seed, 10);
    table
}

/// Convenience wrapper used by `fig5`/`fig6`: GreedyReplace under TR, the
/// paper's three θ values scaled down by default.
pub fn default_thetas(settings: &BenchSettings) -> Vec<usize> {
    vec![
        (settings.theta / 10).max(10),
        settings.theta,
        settings.theta * 10,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn tiny_settings() -> BenchSettings {
        BenchSettings {
            scale: DatasetScale::Tiny,
            theta: 100,
            mcs_rounds: 150,
            num_seeds: 2,
            timeout: Duration::from_secs(5),
            seed: 11,
        }
    }

    #[test]
    fn toy_table_matches_paper_values() {
        let table = table3_toy();
        let rendered = table.render();
        // GreedyReplace with b = 2 must reach the optimum spread of 1.00.
        assert!(rendered.contains("GreedyReplace"));
        assert!(
            rendered.contains("3.00"),
            "blocking v5 leaves spread 3:\n{rendered}"
        );
        assert!(
            rendered.contains("1.00"),
            "b=2 optimum is spread 1:\n{rendered}"
        );
    }

    #[test]
    fn exact_vs_gr_produces_rows_with_ratio_near_100() {
        let table = exact_vs_gr(ProbabilityModel::WeightedCascade, &tiny_settings());
        let rendered = table.render();
        assert!(
            rendered.lines().count() > 2,
            "no rows produced:\n{rendered}"
        );
    }

    #[test]
    fn triggering_extension_reduces_spread() {
        let table = triggering_extension(&tiny_settings());
        let rendered = table.render();
        assert!(rendered.contains("figure1-toy"));
        assert!(rendered.contains("LT"));
    }

    #[test]
    fn default_thetas_are_increasing() {
        let t = default_thetas(&tiny_settings());
        assert!(t[0] < t[1] && t[1] < t[2]);
    }
}
