//! # imin-bench
//!
//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§VI). Each binary in `src/bin/` corresponds to one artefact
//! (see DESIGN.md for the full index) and prints a paper-style table to
//! stdout while also writing a CSV under `target/experiments/`.
//!
//! ## Knobs (environment variables)
//!
//! | Variable | Meaning | Default |
//! |---|---|---|
//! | `IMIN_SCALE` | `tiny`, `bench`, `full`, or a fraction like `0.1` | `bench` |
//! | `IMIN_THETA` | θ, sampled graphs per greedy round | 2000 (tiny: 500) |
//! | `IMIN_MCS_ROUNDS` | Monte-Carlo rounds for evaluation | 2000 |
//! | `IMIN_SEEDS` | number of random misinformation seeds | 10 |
//! | `IMIN_TIMEOUT_SECS` | per-algorithm-run soft timeout | 120 |
//! | `IMIN_DATA_DIR` | directory with real SNAP edge lists | unset (synthetic) |
//!
//! The defaults are deliberately smaller than the paper's θ = r = 10⁴ /
//! 24-hour budget so the whole suite finishes on a laptop; pass
//! `IMIN_SCALE=full IMIN_THETA=10000 IMIN_MCS_ROUNDS=10000` to reproduce the
//! paper-scale setting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;

use imin_core::{Algorithm, AlgorithmConfig, ImninProblem};
use imin_datasets::{Dataset, DatasetScale};
use imin_diffusion::ProbabilityModel;
use imin_graph::{DiGraph, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::Write;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Experiment-wide settings read from the environment.
#[derive(Clone, Debug)]
pub struct BenchSettings {
    /// Dataset scale used for stand-in generation.
    pub scale: DatasetScale,
    /// θ — sampled graphs per round.
    pub theta: usize,
    /// Monte-Carlo rounds for blocker-set evaluation.
    pub mcs_rounds: usize,
    /// Number of misinformation seeds drawn per run.
    pub num_seeds: usize,
    /// Soft per-run timeout: algorithms expected to exceed it are skipped
    /// and reported as `TIMEOUT`, mirroring the paper's ">24h" entries.
    pub timeout: Duration,
    /// Base RNG seed for seed-set selection and algorithms.
    pub seed: u64,
}

impl Default for BenchSettings {
    fn default() -> Self {
        BenchSettings::from_env()
    }
}

impl BenchSettings {
    /// Reads settings from the `IMIN_*` environment variables.
    pub fn from_env() -> Self {
        let scale = match std::env::var("IMIN_SCALE").unwrap_or_default().as_str() {
            "tiny" => DatasetScale::Tiny,
            "full" => DatasetScale::Full,
            "" | "bench" => DatasetScale::Bench,
            other => match other.parse::<f64>() {
                Ok(f) if f > 0.0 && f <= 1.0 => DatasetScale::Scaled(f),
                _ => DatasetScale::Bench,
            },
        };
        let theta = env_usize(
            "IMIN_THETA",
            if matches!(scale, DatasetScale::Tiny) {
                500
            } else {
                2_000
            },
        );
        BenchSettings {
            scale,
            theta,
            mcs_rounds: env_usize("IMIN_MCS_ROUNDS", 2_000),
            num_seeds: env_usize("IMIN_SEEDS", 10),
            timeout: Duration::from_secs(env_usize("IMIN_TIMEOUT_SECS", 120) as u64),
            seed: env_usize("IMIN_SEED", 20230227) as u64,
        }
    }

    /// The [`AlgorithmConfig`] derived from these settings.
    pub fn algorithm_config(&self) -> AlgorithmConfig {
        AlgorithmConfig::default()
            .with_theta(self.theta)
            .with_mcs_rounds(self.mcs_rounds)
            .with_seed(self.seed)
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parses a comma-separated algorithm list (`"ra,od,ag,gr"`, any spelling
/// the [`Algorithm`] registry accepts) into algorithm kinds, preserving
/// order.
///
/// # Errors
/// Returns the registry's [`imin_core::IminError::UnknownAlgorithm`] for
/// the first unrecognised name.
pub fn parse_algorithms(spec: &str) -> Result<Vec<Algorithm>, imin_core::IminError> {
    spec.split(',')
        .map(str::trim)
        .filter(|token| !token.is_empty())
        .map(str::parse)
        .collect()
}

/// Reads an algorithm list from the environment variable `var`, falling
/// back to `default`. Every spelling resolves through the one
/// [`Algorithm`] registry; an unknown name aborts the binary with the
/// registry's error (listing every accepted name) instead of silently
/// running the wrong comparison.
pub fn algorithms_from_env(var: &str, default: &str) -> Vec<Algorithm> {
    let spec = std::env::var(var).unwrap_or_else(|_| default.to_string());
    match parse_algorithms(&spec) {
        Ok(algorithms) if !algorithms.is_empty() => algorithms,
        Ok(_) => parse_algorithms(default).expect("default algorithm list is valid"),
        Err(err) => {
            eprintln!("{var}: {err}");
            std::process::exit(2);
        }
    }
}

/// A dataset prepared for one experiment: probability model applied, seeds
/// drawn, problem constructed.
pub struct PreparedInstance {
    /// Which dataset this is.
    pub dataset: Dataset,
    /// The probability-model label (`TR` / `WC`).
    pub model: &'static str,
    /// Whether real SNAP data was used instead of the synthetic stand-in.
    pub real_data: bool,
    /// The ready-to-solve problem instance.
    pub problem: ImninProblem,
}

/// Draws `count` seed vertices with positive out-degree, uniformly at random
/// (the paper "randomly selects 10 vertices as the seeds").
pub fn draw_seeds(graph: &DiGraph, count: usize, seed: u64) -> Vec<VertexId> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seeds = Vec::with_capacity(count);
    let mut guard = 0usize;
    while seeds.len() < count && guard < 100 * (count + 1) {
        guard += 1;
        let v = VertexId::new(rng.gen_range(0..graph.num_vertices()));
        if graph.out_degree(v) > 0 && !seeds.contains(&v) {
            seeds.push(v);
        }
    }
    // Fall back to arbitrary vertices if the graph has very few sources.
    let mut next = 0usize;
    while seeds.len() < count && next < graph.num_vertices() {
        let v = VertexId::new(next);
        if !seeds.contains(&v) {
            seeds.push(v);
        }
        next += 1;
    }
    seeds
}

/// Loads (or synthesises) a dataset, applies the probability model and draws
/// the seed set.
pub fn prepare_instance(
    dataset: Dataset,
    model: ProbabilityModel,
    settings: &BenchSettings,
) -> PreparedInstance {
    let (topology, real_data) = dataset
        .load_or_generate(settings.scale)
        .expect("dataset generation cannot fail with valid settings");
    let graph = model
        .apply(&topology)
        .expect("probability models produce valid probabilities");
    let seeds = draw_seeds(&graph, settings.num_seeds, settings.seed ^ 0x5EED);
    let problem = ImninProblem::new(&graph, seeds).expect("seeds are valid by construction");
    PreparedInstance {
        dataset,
        model: model.label(),
        real_data,
        problem,
    }
}

/// The two probability models of §VI-A, with deterministic TR assignment.
pub fn paper_models(seed: u64) -> [ProbabilityModel; 2] {
    [
        ProbabilityModel::Trivalency { seed },
        ProbabilityModel::WeightedCascade,
    ]
}

/// Result of timing a single algorithm run.
#[derive(Clone, Debug)]
pub struct TimedRun {
    /// Algorithm label.
    pub algorithm: &'static str,
    /// Selected blockers.
    pub blockers: Vec<VertexId>,
    /// Evaluated expected spread (Monte-Carlo on the original graph).
    pub spread: f64,
    /// Wall-clock selection time.
    pub elapsed: Duration,
}

/// Runs one algorithm and evaluates its blocker set.
pub fn run_algorithm(
    instance: &PreparedInstance,
    algorithm: Algorithm,
    budget: usize,
    settings: &BenchSettings,
) -> TimedRun {
    let config = settings.algorithm_config();
    let start = Instant::now();
    let selection = instance
        .problem
        .solve(algorithm, budget, &config)
        .expect("algorithm run failed");
    let elapsed = start.elapsed();
    let spread = instance
        .problem
        .evaluate_spread(
            &selection.blockers,
            settings.mcs_rounds,
            settings.seed ^ 0xE7A1,
        )
        .expect("evaluation failed");
    TimedRun {
        algorithm: algorithm.label(),
        blockers: selection.blockers,
        spread,
        elapsed,
    }
}

/// Simple fixed-width table printer for paper-style output.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must have as many cells as there are headers).
    pub fn add_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout and writes it as CSV under
    /// `target/experiments/<name>.csv`.
    pub fn emit(&self, name: &str) {
        println!("{}", self.render());
        if let Err(err) = self.write_csv(name) {
            eprintln!("warning: could not write CSV for {name}: {err}");
        }
    }

    /// Writes the table as a CSV file and returns its path.
    pub fn write_csv(&self, name: &str) -> std::io::Result<PathBuf> {
        let dir = experiments_dir();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut file = std::fs::File::create(&path)?;
        writeln!(file, "{}", self.headers.join(","))?;
        for row in &self.rows {
            writeln!(file, "{}", row.join(","))?;
        }
        Ok(path)
    }
}

/// Directory where experiment CSVs are written.
pub fn experiments_dir() -> PathBuf {
    PathBuf::from("target").join("experiments")
}

/// Formats a duration in seconds with millisecond resolution.
pub fn fmt_secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn settings_have_sane_defaults() {
        let s = BenchSettings::from_env();
        assert!(s.theta > 0);
        assert!(s.mcs_rounds > 0);
        assert!(s.num_seeds > 0);
        let cfg = s.algorithm_config();
        assert_eq!(cfg.theta, s.theta);
    }

    #[test]
    fn seed_drawing_prefers_spreaders() {
        let g = Dataset::EmailCore.generate(DatasetScale::Tiny).unwrap();
        let seeds = draw_seeds(&g, 5, 1);
        assert_eq!(seeds.len(), 5);
        let unique: std::collections::HashSet<_> = seeds.iter().collect();
        assert_eq!(unique.len(), 5);
        for &s in &seeds {
            assert!(g.out_degree(s) > 0);
        }
    }

    #[test]
    fn prepare_and_run_a_small_instance() {
        let settings = BenchSettings {
            scale: DatasetScale::Tiny,
            theta: 100,
            mcs_rounds: 100,
            num_seeds: 2,
            timeout: Duration::from_secs(10),
            seed: 3,
        };
        let instance = prepare_instance(
            Dataset::EmailCore,
            ProbabilityModel::Trivalency { seed: 1 },
            &settings,
        );
        assert_eq!(instance.model, "TR");
        let run = run_algorithm(&instance, Algorithm::OutDegree, 3, &settings);
        assert_eq!(run.blockers.len(), 3);
        assert!(run.spread >= settings.num_seeds as f64 - 1e-9);
    }

    #[test]
    fn table_rendering_and_csv() {
        let mut t = Table::new(&["a", "bbbb"]);
        t.add_row(vec!["1".into(), "2".into()]);
        t.add_row(vec!["333".into(), "4".into()]);
        let rendered = t.render();
        assert!(rendered.contains("bbbb"));
        assert!(rendered.lines().count() >= 4);
        let path = t.write_csv("unit-test-table").unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("a,bbbb"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn algorithm_lists_resolve_through_the_registry() {
        let algs = parse_algorithms("ra, od ,ag,gr").unwrap();
        assert_eq!(
            algs,
            vec![
                Algorithm::Random,
                Algorithm::OutDegree,
                Algorithm::AdvancedGreedy,
                Algorithm::GreedyReplace
            ]
        );
        assert_eq!(
            parse_algorithms("pagerank,degree").unwrap(),
            vec![Algorithm::PageRank, Algorithm::Degree]
        );
        assert!(parse_algorithms("ra,quantum").is_err());
    }

    #[test]
    fn paper_models_are_tr_and_wc() {
        let models = paper_models(1);
        assert_eq!(models[0].label(), "TR");
        assert_eq!(models[1].label(), "WC");
        assert_eq!(fmt_secs(Duration::from_millis(1500)), "1.500");
    }
}
