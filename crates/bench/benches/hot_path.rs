//! The sampling→dominator hot path of Algorithm 2 end to end: arena-backed
//! `CompactSample` + reusable `DomTreeWorkspace` versus the nested-adjacency
//! compatibility shim, and the full `decrease_es_computation` at several θ.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use imin_core::decrease::{decrease_es_computation_in, DecreaseConfig, DecreaseWorkspace};
use imin_core::sampler::{CompactSample, IcLiveEdgeSampler, SpreadSampler};
use imin_datasets::{Dataset, DatasetScale};
use imin_diffusion::ProbabilityModel;
use imin_domtree::{dominator_tree_from_adjacency, DomTreeWorkspace};
use imin_graph::{DiGraph, VertexId};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_graph() -> (DiGraph, VertexId) {
    let (topology, _) = Dataset::EmailCore
        .load_or_generate(DatasetScale::Bench)
        .unwrap();
    let graph = ProbabilityModel::WeightedCascade.apply(&topology).unwrap();
    let source = graph
        .vertices()
        .max_by_key(|&v| graph.out_degree(v))
        .unwrap();
    (graph, source)
}

/// One sample → one dominator tree → subtree sizes, flat versus shim.
fn bench_per_sample(c: &mut Criterion) {
    let (graph, source) = bench_graph();
    let blocked = vec![false; graph.num_vertices()];
    let mut group = c.benchmark_group("sample_to_subtree_sizes");
    group.sample_size(10);

    group.bench_function("flat_csr_workspace", |b| {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut sample = CompactSample::new(graph.num_vertices());
        let mut ws = DomTreeWorkspace::new();
        let mut sizes = Vec::new();
        b.iter(|| {
            IcLiveEdgeSampler.sample(&graph, source, &blocked, &mut rng, &mut sample);
            if sample.num_reached() > 1 {
                let dt = ws.compute_csr(
                    sample.num_reached(),
                    sample.offsets(),
                    sample.targets(),
                    VertexId::new(0),
                );
                dt.subtree_sizes_into(&mut sizes);
            }
            sizes.len()
        })
    });

    group.bench_function("nested_adjacency_shim", |b| {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut sample = CompactSample::new(graph.num_vertices());
        b.iter(|| {
            IcLiveEdgeSampler.sample(&graph, source, &blocked, &mut rng, &mut sample);
            if sample.num_reached() > 1 {
                let adjacency: Vec<Vec<u32>> = (0..sample.num_reached() as u32)
                    .map(|l| sample.neighbors(l).to_vec())
                    .collect();
                let dt = dominator_tree_from_adjacency(&adjacency, VertexId::new(0));
                dt.subtree_sizes().len()
            } else {
                0
            }
        })
    });
    group.finish();
}

/// Full Algorithm 2 rounds with a persistent workspace across iterations —
/// the exact shape of the greedy inner loop.
fn bench_decrease(c: &mut Criterion) {
    let (graph, source) = bench_graph();
    let blocked = vec![false; graph.num_vertices()];
    let mut group = c.benchmark_group("decrease_es_computation");
    group.sample_size(10);
    for theta in [200usize, 1_000] {
        group.bench_with_input(BenchmarkId::new("theta", theta), &theta, |b, &theta| {
            let mut ws = DecreaseWorkspace::new();
            let cfg = DecreaseConfig {
                theta,
                threads: 1,
                seed: 7,
            };
            b.iter(|| {
                decrease_es_computation_in(
                    &IcLiveEdgeSampler,
                    &graph,
                    source,
                    &blocked,
                    &cfg,
                    &mut ws,
                )
                .unwrap()
                .samples
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_per_sample, bench_decrease);
criterion_main!(benches);
