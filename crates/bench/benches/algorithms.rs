//! End-to-end blocker selection: AdvancedGreedy vs GreedyReplace vs the
//! degree heuristic (and BaselineGreedy on a deliberately tiny instance).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use imin_core::{Algorithm, AlgorithmConfig, ImninProblem};
use imin_datasets::{Dataset, DatasetScale};
use imin_diffusion::ProbabilityModel;
use imin_graph::VertexId;

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("blocker_selection");
    group.sample_size(10);
    let (topology, _) = Dataset::EmailCore
        .load_or_generate(DatasetScale::Tiny)
        .unwrap();
    let graph = ProbabilityModel::WeightedCascade.apply(&topology).unwrap();
    let problem = ImninProblem::new(&graph, vec![VertexId::new(0), VertexId::new(1)]).unwrap();
    let config = AlgorithmConfig::default()
        .with_theta(500)
        .with_mcs_rounds(200)
        .with_threads(2);
    for alg in [
        Algorithm::OutDegree,
        Algorithm::AdvancedGreedy,
        Algorithm::GreedyReplace,
        Algorithm::BaselineGreedy,
    ] {
        group.bench_with_input(BenchmarkId::new(alg.label(), "b5"), &alg, |b, &alg| {
            b.iter(|| problem.solve(alg, 5, &config).unwrap().len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
