//! Synthetic dataset generation cost (the substitution substrate for the
//! SNAP datasets of Table IV).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use imin_graph::generators;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_generators");
    group.sample_size(10);
    for &n in &[2_000usize, 8_000] {
        group.bench_with_input(
            BenchmarkId::new("preferential_attachment", n),
            &n,
            |b, &n| {
                b.iter(|| {
                    generators::preferential_attachment(n, 4, false, 1.0, 3)
                        .unwrap()
                        .num_edges()
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("power_law", n), &n, |b, &n| {
            b.iter(|| {
                generators::power_law_digraph(n, n * 4, 2.3, n / 10, 1.0, 3)
                    .unwrap()
                    .num_edges()
            })
        });
        group.bench_with_input(BenchmarkId::new("erdos_renyi", n), &n, |b, &n| {
            b.iter(|| {
                generators::erdos_renyi(n, 4.0 / n as f64, 1.0, 3)
                    .unwrap()
                    .num_edges()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
