//! Monte-Carlo spread estimation: sequential vs multi-threaded (ablation for
//! the parallel estimator used to evaluate blocker sets).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use imin_datasets::{Dataset, DatasetScale};
use imin_diffusion::montecarlo::MonteCarloEstimator;
use imin_diffusion::ProbabilityModel;
use imin_graph::VertexId;

fn bench_spread(c: &mut Criterion) {
    let mut group = c.benchmark_group("monte_carlo_spread");
    group.sample_size(10);
    let (topology, _) = Dataset::EmailCore
        .load_or_generate(DatasetScale::Bench)
        .unwrap();
    let graph = ProbabilityModel::Trivalency { seed: 2 }
        .apply(&topology)
        .unwrap();
    let seeds: Vec<VertexId> = (0..10).map(VertexId::new).collect();
    for &threads in &[1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("r1000", format!("{threads}threads")),
            &threads,
            |b, &t| {
                let est = MonteCarloEstimator::new(1_000).with_threads(t).with_seed(1);
                b.iter(|| est.expected_spread(&graph, &seeds).unwrap().mean)
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_spread);
criterion_main!(benches);
