//! Ablation for the paper's core design choice: pricing all candidate
//! blockers at once via dominator trees (Algorithm 2) vs the baseline's
//! per-candidate Monte-Carlo estimation, for one greedy round.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use imin_core::decrease::{decrease_es_computation, DecreaseConfig};
use imin_datasets::{Dataset, DatasetScale};
use imin_diffusion::montecarlo::MonteCarloEstimator;
use imin_diffusion::ProbabilityModel;
use imin_graph::VertexId;

fn bench_delta(c: &mut Criterion) {
    let mut group = c.benchmark_group("spread_decrease_one_round");
    group.sample_size(10);
    let (topology, _) = Dataset::EmailCore
        .load_or_generate(DatasetScale::Tiny)
        .unwrap();
    let graph = ProbabilityModel::WeightedCascade.apply(&topology).unwrap();
    let source = graph
        .vertices()
        .max_by_key(|&v| graph.out_degree(v))
        .unwrap();
    let blocked = vec![false; graph.num_vertices()];

    // Algorithm 2: every candidate priced from the same θ samples.
    group.bench_function(BenchmarkId::new("dominator_trees", "all_candidates"), |b| {
        b.iter(|| {
            decrease_es_computation(
                &graph,
                source,
                &blocked,
                &DecreaseConfig {
                    theta: 1_000,
                    threads: 1,
                    seed: 5,
                },
            )
            .unwrap()
            .delta
            .len()
        })
    });

    // Baseline: Monte-Carlo per candidate — even restricted to only 20
    // candidates and 200 rounds it is far slower per priced candidate.
    group.bench_function(BenchmarkId::new("monte_carlo", "20_candidates"), |b| {
        let est = MonteCarloEstimator::new(200).with_threads(1).with_seed(5);
        b.iter(|| {
            let mut total = 0.0;
            for v in 1..21usize {
                total += est
                    .spread_decrease(&graph, &[source], &blocked, VertexId::new(v))
                    .unwrap();
            }
            total
        })
    });
    group.finish();
}

criterion_group!(benches, bench_delta);
criterion_main!(benches);
