//! Dominator-tree construction: Lengauer–Tarjan (production) vs the
//! iterative data-flow algorithm (oracle) across graph sizes — the ablation
//! for the paper's choice of [53].
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use imin_domtree::iterative::iterative_dominator_tree;
use imin_domtree::lengauer_tarjan::dominator_tree;
use imin_graph::{generators, VertexId};

fn bench_domtree(c: &mut Criterion) {
    let mut group = c.benchmark_group("dominator_tree");
    group.sample_size(10);
    for &n in &[500usize, 2_000, 8_000] {
        let g = generators::power_law_digraph(n, n * 4, 2.3, n / 10, 1.0, 7).unwrap();
        group.bench_with_input(BenchmarkId::new("lengauer_tarjan", n), &g, |b, g| {
            b.iter(|| dominator_tree(g, VertexId::new(0)))
        });
        group.bench_with_input(BenchmarkId::new("iterative", n), &g, |b, g| {
            b.iter(|| iterative_dominator_tree(g, VertexId::new(0)))
        });
        let dt = dominator_tree(&g, VertexId::new(0));
        group.bench_with_input(BenchmarkId::new("subtree_sizes", n), &dt, |b, dt| {
            b.iter(|| dt.subtree_sizes())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_domtree);
criterion_main!(benches);
