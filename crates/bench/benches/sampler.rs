//! Live-edge sampling cost per sample (the inner loop of Algorithm 2) under
//! the TR and WC probability models.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use imin_core::sampler::{CompactSample, IcLiveEdgeSampler, SpreadSampler};
use imin_datasets::{Dataset, DatasetScale};
use imin_diffusion::ProbabilityModel;
use imin_graph::VertexId;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_sampler(c: &mut Criterion) {
    let mut group = c.benchmark_group("live_edge_sampling");
    group.sample_size(10);
    for model in [
        ProbabilityModel::Trivalency { seed: 1 },
        ProbabilityModel::WeightedCascade,
    ] {
        let (topology, _) = Dataset::EmailCore
            .load_or_generate(DatasetScale::Bench)
            .unwrap();
        let graph = model.apply(&topology).unwrap();
        let source = graph
            .vertices()
            .max_by_key(|&v| graph.out_degree(v))
            .unwrap();
        let blocked = vec![false; graph.num_vertices()];
        group.bench_with_input(
            BenchmarkId::new("email_core", model.label()),
            &graph,
            |b, g| {
                let mut rng = SmallRng::seed_from_u64(3);
                let mut sample = CompactSample::new(g.num_vertices());
                b.iter(|| {
                    IcLiveEdgeSampler.sample(g, source, &blocked, &mut rng, &mut sample);
                    sample.num_reached()
                })
            },
        );
        let _ = VertexId::new(0);
    }
    group.finish();
}

criterion_group!(benches, bench_sampler);
criterion_main!(benches);
