//! Property tests: the three dominator algorithms agree with each other and
//! with the reachability-based definition on random directed graphs.

use imin_domtree::iterative::iterative_dominator_tree;
use imin_domtree::lengauer_tarjan::dominator_tree;
use imin_domtree::naive::{naive_immediate_dominators, sigma_through};
use imin_graph::{generators, DiGraph, GraphBuilder, VertexId};
use proptest::prelude::*;

fn build(n: usize, edges: &[(u32, u32)]) -> DiGraph {
    let mut b = GraphBuilder::new(n);
    for &(u, v) in edges {
        b.add_edge(VertexId::from_raw(u), VertexId::from_raw(v), 1.0)
            .unwrap();
    }
    b.build()
}

fn arb_digraph(max_n: usize, max_m: usize) -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2usize..=max_n).prop_flat_map(move |n| {
        let edge = (0..n as u32, 0..n as u32);
        (Just(n), proptest::collection::vec(edge, 0..=max_m))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Lengauer–Tarjan, the iterative algorithm and the brute-force oracle
    /// all compute the same immediate dominators.
    #[test]
    fn all_three_algorithms_agree((n, edges) in arb_digraph(18, 70), root in 0u32..18) {
        let g = build(n, &edges);
        let root = VertexId::from_raw(root % n as u32);
        let lt = dominator_tree(&g, root);
        let it = iterative_dominator_tree(&g, root);
        let naive = naive_immediate_dominators(&g, root);
        prop_assert!(lt.validate().is_ok());
        prop_assert!(it.validate().is_ok());
        for v in g.vertices() {
            prop_assert_eq!(lt.idom(v), it.idom(v), "LT vs iterative mismatch at {}", v);
            prop_assert_eq!(lt.idom(v), naive[v.index()], "LT vs naive mismatch at {}", v);
        }
    }

    /// Theorem 6: the dominator-subtree size of `u` equals the number of
    /// vertices that become unreachable when `u` is blocked.
    #[test]
    fn subtree_size_equals_sigma_through((n, edges) in arb_digraph(16, 60), root in 0u32..16) {
        let g = build(n, &edges);
        let root = VertexId::from_raw(root % n as u32);
        let dt = dominator_tree(&g, root);
        let sizes = dt.subtree_sizes();
        for v in g.vertices() {
            if v == root { continue; }
            if dt.is_reachable(v) {
                prop_assert_eq!(sizes[v.index()], sigma_through(&g, root, v) as u64);
            } else {
                prop_assert_eq!(sizes[v.index()], 0);
            }
        }
    }

    /// Structural sanity on random generator output: sizes are consistent
    /// with reachability, dominance is reflexive/antisymmetric along chains.
    #[test]
    fn domtree_invariants_on_generated_graphs(seed in 0u64..500, n in 3usize..80) {
        let g = generators::erdos_renyi(n, 3.0_f64.min(n as f64) / n as f64, 1.0, seed).unwrap();
        let root = VertexId::new(0);
        let dt = dominator_tree(&g, root);
        prop_assert!(dt.validate().is_ok());
        let sizes = dt.subtree_sizes();
        prop_assert_eq!(sizes[root.index()] as usize, dt.num_reachable());
        let total_leaf_mass: u64 = dt
            .preorder()
            .filter(|&v| dt.children()[v.index()].is_empty())
            .map(|v| sizes[v.index()])
            .sum();
        // Every leaf has size exactly 1.
        prop_assert_eq!(total_leaf_mass as usize, dt.preorder().filter(|&v| dt.children()[v.index()].is_empty()).count());
        for v in dt.preorder() {
            prop_assert!(dt.dominates(root, v));
            prop_assert!(dt.dominates(v, v));
        }
    }
}
