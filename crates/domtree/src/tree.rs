//! The dominator tree data structure.

use imin_graph::VertexId;

const NONE: u32 = u32::MAX;

/// A dominator tree over the vertices reachable from a root in some directed
//  graph.
///
/// Vertices that were unreachable from the root are not part of the tree:
/// [`DomTree::is_reachable`] returns `false`, their immediate dominator is
/// `None` and their subtree size is `0` (they contribute nothing to the
/// spread-decrease estimate of Algorithm 2, exactly as required).
#[derive(Clone, Debug, Default)]
pub struct DomTree {
    // Fields are crate-visible so `DomTreeWorkspace` can rebuild the tree in
    // place, reusing the buffers across samples instead of reallocating.
    pub(crate) root: u32,
    /// `idom[v]` = immediate dominator of `v`; `NONE` for the root and for
    /// unreachable vertices.
    pub(crate) idom: Vec<u32>,
    /// `true` for vertices reachable from the root.
    pub(crate) reachable: Vec<bool>,
    /// Reachable vertices in a preorder of the *dominator tree* (root first,
    /// every vertex after its immediate dominator).
    pub(crate) preorder: Vec<u32>,
}

impl DomTree {
    /// Builds a tree from the immediate-dominator array produced by one of
    /// the construction algorithms.
    ///
    /// `idom[v]` must be `u32::MAX` for the root and for unreachable
    /// vertices; `reachable` flags the vertices that were reached. The
    /// `preorder` must list every reachable vertex after its immediate
    /// dominator (any DFS preorder of the original graph from the root has
    /// this property, because an immediate dominator is always a DFS-tree
    /// ancestor).
    pub(crate) fn from_parts(
        root: VertexId,
        idom: Vec<u32>,
        reachable: Vec<bool>,
        preorder: Vec<u32>,
    ) -> Self {
        debug_assert_eq!(idom.len(), reachable.len());
        DomTree {
            root: root.raw(),
            idom,
            reachable,
            preorder,
        }
    }

    /// The root of the tree (the seed vertex of the sampled graph).
    pub fn root(&self) -> VertexId {
        VertexId::from_raw(self.root)
    }

    /// Number of vertices of the underlying graph (reachable or not).
    pub fn num_vertices(&self) -> usize {
        self.idom.len()
    }

    /// Number of vertices reachable from the root (including the root).
    ///
    /// In a sampled graph this is exactly `σ(s, g)` of Table II.
    pub fn num_reachable(&self) -> usize {
        self.preorder.len()
    }

    /// Returns `true` if `v` is reachable from the root.
    pub fn is_reachable(&self, v: VertexId) -> bool {
        self.reachable.get(v.index()).copied().unwrap_or(false)
    }

    /// Immediate dominator of `v`, or `None` if `v` is the root or
    /// unreachable.
    pub fn idom(&self, v: VertexId) -> Option<VertexId> {
        let raw = *self.idom.get(v.index())?;
        if raw == NONE {
            None
        } else {
            Some(VertexId::from_raw(raw))
        }
    }

    /// Raw immediate-dominator array (`u32::MAX` = none). Useful for tests
    /// comparing two construction algorithms.
    pub fn idom_raw(&self) -> &[u32] {
        &self.idom
    }

    /// The reachable vertices in dominator-tree preorder (root first).
    pub fn preorder(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.preorder.iter().map(|&v| VertexId::from_raw(v))
    }

    /// Children lists of the dominator tree, indexed by vertex.
    pub fn children(&self) -> Vec<Vec<VertexId>> {
        let mut children = vec![Vec::new(); self.idom.len()];
        for (v, &d) in self.idom.iter().enumerate() {
            if d != NONE {
                children[d as usize].push(VertexId::new(v));
            }
        }
        children
    }

    /// Size of the subtree rooted at every vertex.
    ///
    /// `sizes[u]` equals `σ→u(s, g)` — the number of vertices (including `u`
    /// itself) that become unreachable from the root when `u` is blocked
    /// (Theorem 6). Unreachable vertices have size `0`; the root's size is
    /// the total number of reachable vertices.
    pub fn subtree_sizes(&self) -> Vec<u64> {
        let mut sizes = Vec::new();
        self.subtree_sizes_into(&mut sizes);
        sizes
    }

    /// Computes the subtree sizes into a caller-owned buffer, reusing its
    /// capacity. This is the form the per-sample hot loop of Algorithm 2
    /// uses: once `out` has grown to the cascade high-water mark, the call
    /// performs no heap allocation.
    pub fn subtree_sizes_into(&self, out: &mut Vec<u64>) {
        out.clear();
        out.resize(self.idom.len(), 0);
        for &v in &self.preorder {
            out[v as usize] = 1;
        }
        // Children appear after their parents in the preorder, so a reverse
        // sweep accumulates child sizes into parents in one pass.
        for &v in self.preorder.iter().rev() {
            let d = self.idom[v as usize];
            if d != NONE {
                out[d as usize] += out[v as usize];
            }
        }
    }

    /// Accumulates the subtree sizes into `acc` (adding `sizes[v] * weight`
    /// for every vertex). This is the inner loop of Algorithm 2, exposed so
    /// the sampler can avoid allocating a fresh size vector per sample.
    pub fn accumulate_subtree_sizes(&self, acc: &mut [f64], weight: f64) {
        let sizes = self.subtree_sizes();
        for &v in &self.preorder {
            acc[v as usize] += sizes[v as usize] as f64 * weight;
        }
    }

    /// Depth of `v` in the dominator tree (root = 0); `None` if unreachable.
    pub fn depth(&self, v: VertexId) -> Option<usize> {
        if !self.is_reachable(v) {
            return None;
        }
        let mut d = 0usize;
        let mut cur = v.raw();
        while self.idom[cur as usize] != NONE {
            cur = self.idom[cur as usize];
            d += 1;
            debug_assert!(d <= self.idom.len(), "idom chain contains a cycle");
        }
        Some(d)
    }

    /// Returns `true` if `u` dominates `v` (every path from the root to `v`
    /// passes through `u`). Every reachable vertex dominates itself.
    pub fn dominates(&self, u: VertexId, v: VertexId) -> bool {
        if !self.is_reachable(u) || !self.is_reachable(v) {
            return false;
        }
        let target = u.raw();
        let mut cur = v.raw();
        loop {
            if cur == target {
                return true;
            }
            let next = self.idom[cur as usize];
            if next == NONE {
                return false;
            }
            cur = next;
        }
    }

    /// All dominators of `v` from `v` itself up to the root; empty if
    /// unreachable.
    pub fn dominators_of(&self, v: VertexId) -> Vec<VertexId> {
        let mut out = Vec::new();
        if !self.is_reachable(v) {
            return out;
        }
        let mut cur = v.raw();
        out.push(VertexId::from_raw(cur));
        while self.idom[cur as usize] != NONE {
            cur = self.idom[cur as usize];
            out.push(VertexId::from_raw(cur));
        }
        out
    }

    /// Internal consistency checks used by tests: the root is reachable with
    /// no idom, every other reachable vertex has a reachable idom, and the
    /// preorder lists parents before children.
    pub fn validate(&self) -> Result<(), String> {
        if !self.reachable[self.root as usize] {
            return Err("root is not marked reachable".into());
        }
        if self.idom[self.root as usize] != NONE {
            return Err("root must not have an immediate dominator".into());
        }
        let mut position = vec![usize::MAX; self.idom.len()];
        for (i, &v) in self.preorder.iter().enumerate() {
            position[v as usize] = i;
        }
        for v in 0..self.idom.len() {
            let reach = self.reachable[v];
            if reach != (position[v] != usize::MAX) {
                return Err(format!("vertex {v}: reachable flag and preorder disagree"));
            }
            if !reach {
                if self.idom[v] != NONE {
                    return Err(format!("unreachable vertex {v} has an idom"));
                }
                continue;
            }
            if v as u32 != self.root {
                let d = self.idom[v];
                if d == NONE {
                    return Err(format!("reachable vertex {v} lacks an idom"));
                }
                if !self.reachable[d as usize] {
                    return Err(format!("idom of {v} is unreachable"));
                }
                if position[d as usize] >= position[v] {
                    return Err(format!("idom of {v} does not precede it in preorder"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vid(i: usize) -> VertexId {
        VertexId::new(i)
    }

    /// Hand-built tree: 0 -> {1, 2}, 1 -> {3}; vertex 4 unreachable.
    fn sample() -> DomTree {
        DomTree::from_parts(
            vid(0),
            vec![NONE, 0, 0, 1, NONE],
            vec![true, true, true, true, false],
            vec![0, 1, 3, 2],
        )
    }

    #[test]
    fn basic_accessors() {
        let t = sample();
        assert_eq!(t.root(), vid(0));
        assert_eq!(t.num_vertices(), 5);
        assert_eq!(t.num_reachable(), 4);
        assert!(t.is_reachable(vid(3)));
        assert!(!t.is_reachable(vid(4)));
        assert_eq!(t.idom(vid(3)), Some(vid(1)));
        assert_eq!(t.idom(vid(0)), None);
        assert_eq!(t.idom(vid(4)), None);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn subtree_sizes_count_dominated_vertices() {
        let t = sample();
        let sizes = t.subtree_sizes();
        assert_eq!(sizes, vec![4, 2, 1, 1, 0]);
    }

    #[test]
    fn subtree_sizes_into_reuses_buffer() {
        let t = sample();
        // A stale, oversized buffer is fully overwritten and truncated.
        let mut buf = vec![99u64; 16];
        t.subtree_sizes_into(&mut buf);
        assert_eq!(buf, vec![4, 2, 1, 1, 0]);
        let capacity = buf.capacity();
        t.subtree_sizes_into(&mut buf);
        assert_eq!(buf, vec![4, 2, 1, 1, 0]);
        assert_eq!(buf.capacity(), capacity, "no reallocation on reuse");
    }

    #[test]
    fn accumulate_adds_weighted_sizes() {
        let t = sample();
        let mut acc = vec![0.0; 5];
        t.accumulate_subtree_sizes(&mut acc, 0.5);
        assert_eq!(acc, vec![2.0, 1.0, 0.5, 0.5, 0.0]);
        t.accumulate_subtree_sizes(&mut acc, 0.5);
        assert_eq!(acc, vec![4.0, 2.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn depth_and_dominance() {
        let t = sample();
        assert_eq!(t.depth(vid(0)), Some(0));
        assert_eq!(t.depth(vid(3)), Some(2));
        assert_eq!(t.depth(vid(4)), None);
        assert!(t.dominates(vid(0), vid(3)));
        assert!(t.dominates(vid(1), vid(3)));
        assert!(t.dominates(vid(3), vid(3)));
        assert!(!t.dominates(vid(2), vid(3)));
        assert!(!t.dominates(vid(4), vid(3)));
        assert!(!t.dominates(vid(0), vid(4)));
        assert_eq!(t.dominators_of(vid(3)), vec![vid(3), vid(1), vid(0)]);
        assert!(t.dominators_of(vid(4)).is_empty());
    }

    #[test]
    fn children_lists() {
        let t = sample();
        let ch = t.children();
        assert_eq!(ch[0], vec![vid(1), vid(2)]);
        assert_eq!(ch[1], vec![vid(3)]);
        assert!(ch[3].is_empty());
        assert!(ch[4].is_empty());
    }

    #[test]
    fn validate_catches_broken_trees() {
        // idom of a reachable vertex missing.
        let bad = DomTree::from_parts(vid(0), vec![NONE, NONE], vec![true, true], vec![0, 1]);
        assert!(bad.validate().is_err());
        // Unreachable vertex with an idom.
        let bad = DomTree::from_parts(vid(0), vec![NONE, 0], vec![true, false], vec![0]);
        assert!(bad.validate().is_err());
        // Preorder lists child before parent.
        let bad = DomTree::from_parts(
            vid(0),
            vec![NONE, 0, 1],
            vec![true, true, true],
            vec![0, 2, 1],
        );
        assert!(bad.validate().is_err());
    }
}
