//! The Lengauer–Tarjan dominator-tree algorithm.
//!
//! This is the algorithm the paper applies to every sampled graph
//! (§V-B3, Algorithm 2 line 4, reference [53]). The implementation is the
//! "simple" eval–link variant: path compression without balancing, which
//! runs in `O(m log n)` and is the variant Lengauer and Tarjan themselves
//! recommend for graphs that are not extremely large. The asymptotically
//! optimal `O(m·α(m,n))` variant differs only in the link step; for the
//! sampled graphs produced by influence sampling (typically a small fraction
//! of the full graph) the simple variant is consistently faster in practice.
//!
//! The algorithm is generic over how successors are enumerated so that the
//! sampler can run it directly on its compact per-sample adjacency without
//! building an [`imin_graph::DiGraph`] per sample.

use crate::tree::DomTree;
use imin_graph::{DiGraph, VertexId};

const NONE: u32 = u32::MAX;

/// Computes the dominator tree of the vertices reachable from `root`.
///
/// `num_vertices` is the size of the vertex universe (ids `0..num_vertices`)
/// and `successors(u, f)` must call `f(v)` for every out-neighbour `v` of
/// `u`. Unreachable vertices simply end up outside the tree.
pub fn compute_dominators<S>(num_vertices: usize, root: VertexId, mut successors: S) -> DomTree
where
    S: FnMut(u32, &mut dyn FnMut(u32)),
{
    let n = num_vertices;
    assert!(root.index() < n, "root {root} out of range for {n} vertices");

    // --- Phase 1: iterative DFS from the root -------------------------------
    // dfn[v]   : preorder number + 1 (0 = unvisited)
    // vertex[i]: vertex with preorder number i
    // parent[v]: DFS-tree parent
    let mut dfn = vec![0u32; n];
    let mut vertex: Vec<u32> = Vec::new();
    let mut parent = vec![NONE; n];
    let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];

    let root_raw = root.raw();
    dfn[root_raw as usize] = 1;
    vertex.push(root_raw);
    // Explicit depth-first stack. Numbers are assigned at first visit in
    // genuine DFS order (a prerequisite of Lengauer–Tarjan: a non-tree edge
    // can never point from a smaller to a larger preorder number across
    // subtrees). Every traversed edge is recorded as a predecessor entry of
    // its target, which is exactly what the semidominator step needs.
    struct Frame {
        v: u32,
        succs: Vec<u32>,
        next: usize,
    }
    let collect = |u: u32, successors: &mut S| {
        let mut s = Vec::new();
        successors(u, &mut |v| s.push(v));
        s
    };
    let mut stack: Vec<Frame> = Vec::new();
    let root_succs = collect(root_raw, &mut successors);
    stack.push(Frame {
        v: root_raw,
        succs: root_succs,
        next: 0,
    });
    loop {
        let step = {
            let frame = match stack.last_mut() {
                Some(f) => f,
                None => break,
            };
            if frame.next < frame.succs.len() {
                let v = frame.succs[frame.next];
                frame.next += 1;
                Some((frame.v, v))
            } else {
                None
            }
        };
        match step {
            None => {
                stack.pop();
            }
            Some((u, v)) => {
                debug_assert!((v as usize) < n, "successor {v} out of range");
                preds[v as usize].push(u);
                if dfn[v as usize] == 0 {
                    dfn[v as usize] = vertex.len() as u32 + 1;
                    vertex.push(v);
                    parent[v as usize] = u;
                    let succs = collect(v, &mut successors);
                    stack.push(Frame { v, succs, next: 0 });
                }
            }
        }
    }
    let reached = vertex.len();

    // Preorder copy for the final DomTree (vertex[] is mutated below? no, it
    // is not — keep a clone for clarity and cheapness).
    let preorder: Vec<u32> = vertex.clone();
    let mut reachable = vec![false; n];
    for &v in &preorder {
        reachable[v as usize] = true;
    }

    if reached <= 1 {
        let idom = vec![NONE; n];
        return DomTree::from_parts(root, idom, reachable, preorder);
    }

    // --- Phase 2: semidominators and implicit idoms --------------------------
    // semi[v] : initially dfn(v); later the dfn of the semidominator of v.
    // All comparisons are on dfn numbers.
    let mut semi: Vec<u32> = dfn.clone();
    let mut idom = vec![NONE; n];
    let mut ancestor = vec![NONE; n];
    let mut label: Vec<u32> = (0..n as u32).collect();
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); n];

    // Iterative path-compression eval.
    let mut compress_stack: Vec<u32> = Vec::new();
    let eval = |v: u32,
                    ancestor: &mut Vec<u32>,
                    label: &mut Vec<u32>,
                    semi: &Vec<u32>,
                    compress_stack: &mut Vec<u32>|
     -> u32 {
        if ancestor[v as usize] == NONE {
            return v;
        }
        // Collect the ancestor chain that still needs compression.
        compress_stack.clear();
        let mut cur = v;
        while ancestor[ancestor[cur as usize] as usize] != NONE {
            compress_stack.push(cur);
            cur = ancestor[cur as usize];
        }
        // Compress from the top of the chain downwards.
        while let Some(w) = compress_stack.pop() {
            let anc = ancestor[w as usize];
            if semi[label[anc as usize] as usize] < semi[label[w as usize] as usize] {
                label[w as usize] = label[anc as usize];
            }
            ancestor[w as usize] = ancestor[anc as usize];
        }
        label[v as usize]
    };

    for i in (1..reached).rev() {
        let w = vertex[i];
        let p = parent[w as usize];
        // Step 2: semidominator of w.
        for pi in 0..preds[w as usize].len() {
            let v = preds[w as usize][pi];
            // Predecessors that were never reached cannot occur: an edge
            // (v, w) is only recorded when v was expanded, i.e. reached.
            let u = eval(v, &mut ancestor, &mut label, &semi, &mut compress_stack);
            if semi[u as usize] < semi[w as usize] {
                semi[w as usize] = semi[u as usize];
            }
        }
        buckets[vertex[(semi[w as usize] - 1) as usize] as usize].push(w);
        // link(parent(w), w)
        ancestor[w as usize] = p;
        // Step 3: implicit immediate dominators for the bucket of parent(w).
        let bucket = std::mem::take(&mut buckets[p as usize]);
        for v in bucket {
            let u = eval(v, &mut ancestor, &mut label, &semi, &mut compress_stack);
            idom[v as usize] = if semi[u as usize] < semi[v as usize] {
                u
            } else {
                p
            };
        }
    }

    // --- Phase 3: explicit immediate dominators ------------------------------
    for i in 1..reached {
        let w = vertex[i];
        if idom[w as usize] != vertex[(semi[w as usize] - 1) as usize] {
            idom[w as usize] = idom[idom[w as usize] as usize];
        }
    }
    idom[root_raw as usize] = NONE;

    DomTree::from_parts(root, idom, reachable, preorder)
}

/// Dominator tree of `graph` rooted at `root` (over the full graph).
pub fn dominator_tree(graph: &DiGraph, root: VertexId) -> DomTree {
    compute_dominators(graph.num_vertices(), root, |u, f| {
        for &v in graph.out_neighbors(VertexId::from_raw(u)) {
            f(v);
        }
    })
}

/// Dominator tree of `graph` rooted at `root`, skipping every vertex for
/// which `blocked[v]` is `true` (edges into and out of blocked vertices are
/// ignored, matching the blocker semantics of Definition 2).
///
/// # Panics
/// Panics if the root itself is blocked — callers must never block a seed.
pub fn dominator_tree_masked(graph: &DiGraph, root: VertexId, blocked: &[bool]) -> DomTree {
    assert!(
        !blocked[root.index()],
        "the root/seed vertex must not be blocked"
    );
    compute_dominators(graph.num_vertices(), root, |u, f| {
        if blocked[u as usize] {
            return;
        }
        for &v in graph.out_neighbors(VertexId::from_raw(u)) {
            if !blocked[v as usize] {
                f(v);
            }
        }
    })
}

/// Dominator tree over a plain adjacency-list representation (used by the
/// sampler, whose live-edge samples are stored as `Vec<Vec<u32>>`).
pub fn dominator_tree_from_adjacency(adjacency: &[Vec<u32>], root: VertexId) -> DomTree {
    compute_dominators(adjacency.len(), root, |u, f| {
        for &v in &adjacency[u as usize] {
            f(v);
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vid(i: usize) -> VertexId {
        VertexId::new(i)
    }

    fn graph(n: usize, edges: &[(usize, usize)]) -> DiGraph {
        DiGraph::from_edges(
            n,
            edges
                .iter()
                .map(|&(u, v)| (vid(u), vid(v), 1.0))
                .collect::<Vec<_>>(),
        )
        .unwrap()
    }

    #[test]
    fn diamond_idoms() {
        // 0 -> 1 -> 3, 0 -> 2 -> 3: idom(3) = 0.
        let g = graph(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let dt = dominator_tree(&g, vid(0));
        assert!(dt.validate().is_ok());
        assert_eq!(dt.idom(vid(1)), Some(vid(0)));
        assert_eq!(dt.idom(vid(2)), Some(vid(0)));
        assert_eq!(dt.idom(vid(3)), Some(vid(0)));
        assert_eq!(dt.subtree_sizes(), vec![4, 1, 1, 1]);
    }

    #[test]
    fn chain_idoms_and_sizes() {
        let g = graph(4, &[(0, 1), (1, 2), (2, 3)]);
        let dt = dominator_tree(&g, vid(0));
        assert_eq!(dt.idom(vid(3)), Some(vid(2)));
        assert_eq!(dt.subtree_sizes(), vec![4, 3, 2, 1]);
        assert_eq!(dt.depth(vid(3)), Some(3));
    }

    #[test]
    fn classic_lengauer_tarjan_example() {
        // The textbook example from the original paper (Appel's rendering),
        // vertices R,A..L mapped to 0..12:
        // R=0 A=1 B=2 C=3 D=4 E=5 F=6 G=7 H=8 I=9 J=10 K=11 L=12
        let g = graph(
            13,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 4),
                (2, 1),
                (2, 4),
                (2, 5),
                (3, 6),
                (3, 7),
                (4, 12),
                (5, 8),
                (6, 9),
                (7, 9),
                (7, 10),
                (8, 5),
                (8, 11),
                (9, 11),
                (10, 9),
                (11, 9),
                (11, 0),
                (12, 8),
            ],
        );
        let dt = dominator_tree(&g, vid(0));
        assert!(dt.validate().is_ok());
        // Known immediate dominators for this flow graph.
        let expected = [
            (1, 0),
            (2, 0),
            (3, 0),
            (4, 0),
            (5, 0),
            (6, 3),
            (7, 3),
            (8, 0),
            (9, 0),
            (10, 7),
            (11, 0),
            (12, 4),
        ];
        for (v, d) in expected {
            assert_eq!(
                dt.idom(vid(v)),
                Some(vid(d)),
                "idom of vertex {v} should be {d}"
            );
        }
    }

    #[test]
    fn unreachable_vertices_are_excluded() {
        let g = graph(5, &[(0, 1), (1, 2), (3, 4)]);
        let dt = dominator_tree(&g, vid(0));
        assert_eq!(dt.num_reachable(), 3);
        assert!(!dt.is_reachable(vid(3)));
        assert_eq!(dt.idom(vid(4)), None);
        assert_eq!(dt.subtree_sizes()[3], 0);
        assert_eq!(dt.subtree_sizes()[0], 3);
    }

    #[test]
    fn single_vertex_and_isolated_root() {
        let g = DiGraph::empty(3);
        let dt = dominator_tree(&g, vid(1));
        assert_eq!(dt.num_reachable(), 1);
        assert_eq!(dt.root(), vid(1));
        assert_eq!(dt.subtree_sizes(), vec![0, 1, 0]);
        assert!(dt.validate().is_ok());
    }

    #[test]
    fn cycle_back_edges_do_not_confuse_dominators() {
        // 0 -> 1 -> 2 -> 1 (cycle), 2 -> 3.
        let g = graph(4, &[(0, 1), (1, 2), (2, 1), (2, 3)]);
        let dt = dominator_tree(&g, vid(0));
        assert_eq!(dt.idom(vid(1)), Some(vid(0)));
        assert_eq!(dt.idom(vid(2)), Some(vid(1)));
        assert_eq!(dt.idom(vid(3)), Some(vid(2)));
    }

    #[test]
    fn multiple_paths_collapse_to_common_dominator() {
        // Figure-1-like topology: the seed has two parallel branches that
        // rejoin, so the rejoin vertex is dominated by the seed only.
        let g = graph(
            6,
            &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (0, 5), (5, 4)],
        );
        let dt = dominator_tree(&g, vid(0));
        assert_eq!(dt.idom(vid(3)), Some(vid(0)));
        assert_eq!(dt.idom(vid(4)), Some(vid(0)));
        assert_eq!(dt.subtree_sizes()[0], 6);
    }

    #[test]
    fn masked_tree_skips_blocked_vertices() {
        // 0 -> 1 -> 2, 0 -> 3 -> 2. Blocking 1 leaves 2 dominated by 3.
        let g = graph(4, &[(0, 1), (1, 2), (0, 3), (3, 2)]);
        let mut blocked = vec![false; 4];
        blocked[1] = true;
        let dt = dominator_tree_masked(&g, vid(0), &blocked);
        assert!(!dt.is_reachable(vid(1)));
        assert_eq!(dt.idom(vid(2)), Some(vid(3)));
        assert_eq!(dt.subtree_sizes(), vec![3, 0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "must not be blocked")]
    fn masked_tree_rejects_blocked_root() {
        let g = graph(2, &[(0, 1)]);
        let blocked = vec![true, false];
        let _ = dominator_tree_masked(&g, vid(0), &blocked);
    }

    #[test]
    fn adjacency_interface_matches_graph_interface() {
        let g = graph(5, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]);
        let adj: Vec<Vec<u32>> = (0..5)
            .map(|u| g.out_neighbors(vid(u)).to_vec())
            .collect();
        let a = dominator_tree(&g, vid(0));
        let b = dominator_tree_from_adjacency(&adj, vid(0));
        assert_eq!(a.idom_raw(), b.idom_raw());
        assert_eq!(a.subtree_sizes(), b.subtree_sizes());
    }

    #[test]
    fn deep_path_does_not_overflow_the_stack() {
        // 50k-vertex path exercises the iterative DFS and iterative
        // path compression.
        let n = 50_000;
        let edges: Vec<(usize, usize)> = (1..n).map(|i| (i - 1, i)).collect();
        let g = graph(n, &edges);
        let dt = dominator_tree(&g, vid(0));
        assert_eq!(dt.num_reachable(), n);
        assert_eq!(dt.subtree_sizes()[0], n as u64);
        assert_eq!(dt.idom(vid(n - 1)), Some(vid(n - 2)));
    }
}
