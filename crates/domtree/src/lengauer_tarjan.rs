//! The Lengauer–Tarjan dominator-tree algorithm.
//!
//! This is the algorithm the paper applies to every sampled graph
//! (§V-B3, Algorithm 2 line 4, reference \[53\]). The implementation is the
//! "simple" eval–link variant: path compression without balancing, which
//! runs in `O(m log n)` and is the variant Lengauer and Tarjan themselves
//! recommend for graphs that are not extremely large. The asymptotically
//! optimal `O(m·α(m,n))` variant differs only in the link step; for the
//! sampled graphs produced by influence sampling (typically a small fraction
//! of the full graph) the simple variant is consistently faster in practice.
//!
//! The production entry point is [`DomTreeWorkspace`]: it owns **all**
//! scratch state of the algorithm — the DFS stack, a flattened
//! predecessor CSR, the linked-list buckets of the semidominator phase, the
//! `semi`/`ancestor`/`label` arrays and the output [`DomTree`] storage — so
//! that the `budget × θ` hot loop of Algorithm 2 (one dominator tree per
//! live-edge sample) performs **zero heap allocations in steady state**:
//! every buffer is cleared and refilled in place, and clearing costs are
//! proportional to the size of the previous sample, never to the full graph.
//!
//! The convenience functions ([`dominator_tree`], [`dominator_tree_masked`],
//! [`dominator_tree_from_adjacency`], [`compute_dominators`]) are thin
//! wrappers that run a fresh workspace once and hand out the owned tree.

use crate::tree::DomTree;
use imin_graph::{DiGraph, VertexId};

const NONE: u32 = u32::MAX;

/// Reusable scratch state for Lengauer–Tarjan runs.
///
/// A workspace amortises every allocation of the algorithm across runs:
/// after the buffers have grown to the high-water mark of the inputs it has
/// seen, [`DomTreeWorkspace::compute_csr`] is allocation-free. One workspace
/// serves one thread; the sampling loop of Algorithm 2 keeps one instance
/// per worker thread alive for the whole greedy run.
///
/// ```
/// use imin_domtree::DomTreeWorkspace;
/// use imin_graph::VertexId;
///
/// // Diamond 0 -> {1, 2} -> 3 in CSR form.
/// let offsets = [0u32, 2, 3, 4, 4];
/// let targets = [1u32, 2, 3, 3];
/// let mut ws = DomTreeWorkspace::new();
/// let tree = ws.compute_csr(4, &offsets, &targets, VertexId::new(0));
/// assert_eq!(tree.idom(VertexId::new(3)), Some(VertexId::new(0)));
/// ```
#[derive(Clone, Debug, Default)]
pub struct DomTreeWorkspace {
    // ---- materialised adjacency for the closure-based entry points -------
    // Per-vertex slice bounds into `adj_targets`; rows are written in
    // discovery order, so only reachable vertices ever get a non-empty row.
    adj_starts: Vec<u32>,
    adj_ends: Vec<u32>,
    adj_targets: Vec<u32>,
    // ---- DFS ------------------------------------------------------------
    /// Preorder number + 1 (0 = unvisited).
    dfn: Vec<u32>,
    /// DFS-tree parent.
    parent: Vec<u32>,
    /// Explicit DFS stack: vertex and its CSR edge cursor.
    stack_v: Vec<u32>,
    stack_e: Vec<u32>,
    // ---- flattened predecessor lists ------------------------------------
    /// CSR offsets of the predecessor arena (`n + 1` entries).
    pred_offsets: Vec<u32>,
    /// Write cursors while scattering predecessors.
    pred_cursor: Vec<u32>,
    /// Predecessor arena: sources of every edge whose source was reached.
    preds: Vec<u32>,
    // ---- Lengauer–Tarjan state ------------------------------------------
    semi: Vec<u32>,
    ancestor: Vec<u32>,
    label: Vec<u32>,
    /// Intrusive bucket lists: each vertex sits in at most one bucket, so a
    /// head array plus a next array replace the per-vertex `Vec`s.
    bucket_head: Vec<u32>,
    bucket_next: Vec<u32>,
    compress_stack: Vec<u32>,
    // ---- output ----------------------------------------------------------
    tree: DomTree,
}

impl DomTreeWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Computes the dominator tree of the vertices reachable from `root` in
    /// the graph given in CSR form: the out-edges of vertex `u` are
    /// `targets[offsets[u] .. offsets[u + 1]]`, over the vertex universe
    /// `0..num_vertices`.
    ///
    /// The returned reference points into the workspace; it is valid until
    /// the next `compute_*` call. Allocation-free once the workspace has
    /// grown to the input high-water mark.
    ///
    /// # Panics
    /// Panics if `offsets` does not have `num_vertices + 1` entries or the
    /// root is out of range.
    pub fn compute_csr(
        &mut self,
        num_vertices: usize,
        offsets: &[u32],
        targets: &[u32],
        root: VertexId,
    ) -> &DomTree {
        assert_eq!(
            offsets.len(),
            num_vertices + 1,
            "CSR offsets must have num_vertices + 1 entries"
        );
        self.run(
            num_vertices,
            &offsets[..num_vertices],
            &offsets[1..],
            targets,
            root,
        );
        &self.tree
    }

    /// Computes the dominator tree over an adjacency described by a closure:
    /// `successors(u, f)` must call `f(v)` for every out-neighbour `v` of
    /// `u`.
    ///
    /// The closure is only consulted for vertices reachable from the root: a
    /// breadth-first discovery materialises exactly the reachable rows into
    /// the workspace's adjacency arena before solving, so a call on a large
    /// universe with a small reachable region (e.g. a heavily masked graph)
    /// costs `O(num_vertices + reachable edges)`, not `O(total edges)`.
    pub fn compute<S>(&mut self, num_vertices: usize, root: VertexId, mut successors: S) -> &DomTree
    where
        S: FnMut(u32, &mut dyn FnMut(u32)),
    {
        let n = num_vertices;
        // Split borrows: the adjacency buffers are filled here and then
        // passed to `run` as plain slices.
        let mut adj_starts = std::mem::take(&mut self.adj_starts);
        let mut adj_ends = std::mem::take(&mut self.adj_ends);
        let mut adj_targets = std::mem::take(&mut self.adj_targets);
        adj_starts.clear();
        adj_starts.resize(n, 0);
        adj_ends.clear();
        adj_ends.resize(n, 0);
        adj_targets.clear();
        if root.index() < n {
            // BFS discovery (visited marks in `dfn`, which `run` resets; the
            // queue borrows the DFS vertex stack, which `run` also resets).
            let dfn = &mut self.dfn;
            dfn.clear();
            dfn.resize(n, 0);
            let queue = &mut self.stack_v;
            queue.clear();
            dfn[root.index()] = 1;
            queue.push(root.raw());
            let mut head = 0usize;
            while head < queue.len() {
                let u = queue[head];
                head += 1;
                let start = adj_targets.len() as u32;
                successors(u, &mut |v| adj_targets.push(v));
                adj_starts[u as usize] = start;
                adj_ends[u as usize] = adj_targets.len() as u32;
                for &v in &adj_targets[start as usize..] {
                    debug_assert!((v as usize) < n, "successor {v} out of range");
                    if dfn[v as usize] == 0 {
                        dfn[v as usize] = 1;
                        queue.push(v);
                    }
                }
            }
        }
        self.run(n, &adj_starts, &adj_ends, &adj_targets, root);
        self.adj_starts = adj_starts;
        self.adj_ends = adj_ends;
        self.adj_targets = adj_targets;
        &self.tree
    }

    /// The tree produced by the most recent `compute_*` call.
    pub fn tree(&self) -> &DomTree {
        &self.tree
    }

    /// Consumes the workspace, returning the most recently computed tree.
    pub fn into_tree(self) -> DomTree {
        self.tree
    }

    fn run(&mut self, n: usize, starts: &[u32], ends: &[u32], targets: &[u32], root: VertexId) {
        assert!(
            root.index() < n,
            "root {root} out of range for {n} vertices"
        );
        let root_raw = root.raw();

        // --- Phase 1: iterative DFS from the root ---------------------------
        // Preorder numbers are assigned at first visit in genuine DFS order
        // (a prerequisite of Lengauer–Tarjan: a non-tree edge can never point
        // from a smaller to a larger preorder number across subtrees). The
        // explicit stack stores a CSR edge cursor per frame, so descending
        // and resuming a vertex costs O(1) and allocates nothing.
        let dfn = &mut self.dfn;
        let parent = &mut self.parent;
        dfn.clear();
        dfn.resize(n, 0);
        parent.clear();
        parent.resize(n, NONE);
        let preorder = &mut self.tree.preorder;
        preorder.clear();
        self.stack_v.clear();
        self.stack_e.clear();

        dfn[root_raw as usize] = 1;
        preorder.push(root_raw);
        self.stack_v.push(root_raw);
        self.stack_e.push(starts[root_raw as usize]);
        while let Some(&u) = self.stack_v.last() {
            let cursor = self.stack_e.last_mut().expect("stacks move in lockstep");
            if *cursor < ends[u as usize] {
                let v = targets[*cursor as usize];
                *cursor += 1;
                debug_assert!((v as usize) < n, "successor {v} out of range");
                if dfn[v as usize] == 0 {
                    dfn[v as usize] = preorder.len() as u32 + 1;
                    parent[v as usize] = u;
                    preorder.push(v);
                    self.stack_v.push(v);
                    self.stack_e.push(starts[v as usize]);
                }
            } else {
                self.stack_v.pop();
                self.stack_e.pop();
            }
        }
        let reached = preorder.len();

        let reachable = &mut self.tree.reachable;
        reachable.clear();
        reachable.resize(n, false);
        for &v in preorder.iter() {
            reachable[v as usize] = true;
        }

        let idom = &mut self.tree.idom;
        idom.clear();
        idom.resize(n, NONE);
        self.tree.root = root_raw;

        if reached <= 1 {
            return;
        }

        // --- Tree fast path --------------------------------------------------
        // If every vertex was reached and there are exactly n − 1 edges, every
        // edge is a DFS tree edge, so each non-root vertex has its DFS parent
        // as its unique predecessor — the graph *is* its own dominator tree.
        // Live-edge samples are trees whenever no cascade paths rejoin, which
        // is the common case for small cascades, so this skips the whole
        // semidominator machinery for them.
        if reached == n && targets.len() == n - 1 {
            for &w in preorder[1..].iter() {
                idom[w as usize] = parent[w as usize];
            }
            return;
        }

        // --- Phase 1b: flattened predecessor lists --------------------------
        // The semidominator step walks the predecessors of every vertex. They
        // are gathered into a CSR arena with the classic count → prefix-sum →
        // scatter scheme, restricted to edges whose *source* was reached (an
        // edge out of an unreached vertex can never influence dominance, and
        // skipping it preserves the invariant that `eval` only ever sees
        // numbered vertices).
        let pred_offsets = &mut self.pred_offsets;
        pred_offsets.clear();
        pred_offsets.resize(n + 1, 0);
        for &u in preorder.iter() {
            let lo = starts[u as usize] as usize;
            let hi = ends[u as usize] as usize;
            for &v in &targets[lo..hi] {
                pred_offsets[v as usize + 1] += 1;
            }
        }
        for i in 0..n {
            pred_offsets[i + 1] += pred_offsets[i];
        }
        let total_preds = pred_offsets[n] as usize;
        let preds = &mut self.preds;
        preds.clear();
        preds.resize(total_preds, 0);
        let pred_cursor = &mut self.pred_cursor;
        pred_cursor.clear();
        pred_cursor.extend_from_slice(&pred_offsets[..n]);
        for &u in preorder.iter() {
            let lo = starts[u as usize] as usize;
            let hi = ends[u as usize] as usize;
            for &v in &targets[lo..hi] {
                let slot = pred_cursor[v as usize];
                pred_cursor[v as usize] += 1;
                preds[slot as usize] = u;
            }
        }

        // --- Phase 2: semidominators and implicit idoms ---------------------
        // semi[v]: initially dfn(v); later the dfn of the semidominator of v.
        // All comparisons are on dfn numbers. Buckets are intrusive linked
        // lists: every vertex enters exactly one bucket, so `bucket_next`
        // chains it and `bucket_head` anchors the list of its semidominator.
        let semi = &mut self.semi;
        semi.clear();
        semi.extend_from_slice(dfn);
        let ancestor = &mut self.ancestor;
        ancestor.clear();
        ancestor.resize(n, NONE);
        let label = &mut self.label;
        label.clear();
        label.extend(0..n as u32);
        let bucket_head = &mut self.bucket_head;
        bucket_head.clear();
        bucket_head.resize(n, NONE);
        let bucket_next = &mut self.bucket_next;
        bucket_next.clear();
        bucket_next.resize(n, NONE);
        let compress_stack = &mut self.compress_stack;
        compress_stack.clear();

        // Iterative path-compression eval.
        let eval = |v: u32,
                    ancestor: &mut [u32],
                    label: &mut [u32],
                    semi: &[u32],
                    compress_stack: &mut Vec<u32>|
         -> u32 {
            if ancestor[v as usize] == NONE {
                return v;
            }
            // Collect the ancestor chain that still needs compression.
            compress_stack.clear();
            let mut cur = v;
            while ancestor[ancestor[cur as usize] as usize] != NONE {
                compress_stack.push(cur);
                cur = ancestor[cur as usize];
            }
            // Compress from the top of the chain downwards.
            while let Some(w) = compress_stack.pop() {
                let anc = ancestor[w as usize];
                if semi[label[anc as usize] as usize] < semi[label[w as usize] as usize] {
                    label[w as usize] = label[anc as usize];
                }
                ancestor[w as usize] = ancestor[anc as usize];
            }
            label[v as usize]
        };

        for i in (1..reached).rev() {
            let w = preorder[i];
            let p = parent[w as usize];
            // Step 2: semidominator of w.
            let lo = pred_offsets[w as usize] as usize;
            let hi = pred_offsets[w as usize + 1] as usize;
            for &v in &preds[lo..hi] {
                let u = eval(v, ancestor, label, semi, compress_stack);
                if semi[u as usize] < semi[w as usize] {
                    semi[w as usize] = semi[u as usize];
                }
            }
            let sd = preorder[(semi[w as usize] - 1) as usize];
            bucket_next[w as usize] = bucket_head[sd as usize];
            bucket_head[sd as usize] = w;
            // link(parent(w), w)
            ancestor[w as usize] = p;
            // Step 3: implicit immediate dominators for the bucket of
            // parent(w).
            let mut v = bucket_head[p as usize];
            bucket_head[p as usize] = NONE;
            while v != NONE {
                let next = bucket_next[v as usize];
                let u = eval(v, ancestor, label, semi, compress_stack);
                idom[v as usize] = if semi[u as usize] < semi[v as usize] {
                    u
                } else {
                    p
                };
                v = next;
            }
        }

        // --- Phase 3: explicit immediate dominators -------------------------
        for i in 1..reached {
            let w = preorder[i];
            if idom[w as usize] != preorder[(semi[w as usize] - 1) as usize] {
                idom[w as usize] = idom[idom[w as usize] as usize];
            }
        }
        idom[root_raw as usize] = NONE;
    }
}

/// Computes the dominator tree of the vertices reachable from `root`.
///
/// `num_vertices` is the size of the vertex universe (ids `0..num_vertices`)
/// and `successors(u, f)` must call `f(v)` for every out-neighbour `v` of
/// `u`. Unreachable vertices simply end up outside the tree.
///
/// One-shot convenience over [`DomTreeWorkspace::compute`]; callers in a
/// loop should hold a workspace instead.
pub fn compute_dominators<S>(num_vertices: usize, root: VertexId, successors: S) -> DomTree
where
    S: FnMut(u32, &mut dyn FnMut(u32)),
{
    let mut ws = DomTreeWorkspace::new();
    ws.compute(num_vertices, root, successors);
    ws.into_tree()
}

/// Dominator tree of `graph` rooted at `root` (over the full graph).
pub fn dominator_tree(graph: &DiGraph, root: VertexId) -> DomTree {
    compute_dominators(graph.num_vertices(), root, |u, f| {
        for &v in graph.out_neighbors(VertexId::from_raw(u)) {
            f(v);
        }
    })
}

/// Dominator tree of `graph` rooted at `root`, skipping every vertex for
/// which `blocked[v]` is `true` (edges into and out of blocked vertices are
/// ignored, matching the blocker semantics of Definition 2).
///
/// # Panics
/// Panics if the root itself is blocked — callers must never block a seed.
pub fn dominator_tree_masked(graph: &DiGraph, root: VertexId, blocked: &[bool]) -> DomTree {
    assert!(
        !blocked[root.index()],
        "the root/seed vertex must not be blocked"
    );
    compute_dominators(graph.num_vertices(), root, |u, f| {
        if blocked[u as usize] {
            return;
        }
        for &v in graph.out_neighbors(VertexId::from_raw(u)) {
            if !blocked[v as usize] {
                f(v);
            }
        }
    })
}

/// Dominator tree over a nested adjacency-list representation.
///
/// Compatibility shim over [`DomTreeWorkspace`]: the sampler used to store
/// live-edge samples as `Vec<Vec<u32>>` and this entry point survives for
/// tests, oracles and external callers that still hold that shape. The
/// production sampling path feeds its flat CSR arena directly to
/// [`DomTreeWorkspace::compute_csr`] instead.
pub fn dominator_tree_from_adjacency(adjacency: &[Vec<u32>], root: VertexId) -> DomTree {
    compute_dominators(adjacency.len(), root, |u, f| {
        for &v in &adjacency[u as usize] {
            f(v);
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vid(i: usize) -> VertexId {
        VertexId::new(i)
    }

    fn graph(n: usize, edges: &[(usize, usize)]) -> DiGraph {
        DiGraph::from_edges(
            n,
            edges
                .iter()
                .map(|&(u, v)| (vid(u), vid(v), 1.0))
                .collect::<Vec<_>>(),
        )
        .unwrap()
    }

    #[test]
    fn diamond_idoms() {
        // 0 -> 1 -> 3, 0 -> 2 -> 3: idom(3) = 0.
        let g = graph(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let dt = dominator_tree(&g, vid(0));
        assert!(dt.validate().is_ok());
        assert_eq!(dt.idom(vid(1)), Some(vid(0)));
        assert_eq!(dt.idom(vid(2)), Some(vid(0)));
        assert_eq!(dt.idom(vid(3)), Some(vid(0)));
        assert_eq!(dt.subtree_sizes(), vec![4, 1, 1, 1]);
    }

    #[test]
    fn chain_idoms_and_sizes() {
        let g = graph(4, &[(0, 1), (1, 2), (2, 3)]);
        let dt = dominator_tree(&g, vid(0));
        assert_eq!(dt.idom(vid(3)), Some(vid(2)));
        assert_eq!(dt.subtree_sizes(), vec![4, 3, 2, 1]);
        assert_eq!(dt.depth(vid(3)), Some(3));
    }

    #[test]
    fn classic_lengauer_tarjan_example() {
        // The textbook example from the original paper (Appel's rendering),
        // vertices R,A..L mapped to 0..12:
        // R=0 A=1 B=2 C=3 D=4 E=5 F=6 G=7 H=8 I=9 J=10 K=11 L=12
        let g = graph(
            13,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 4),
                (2, 1),
                (2, 4),
                (2, 5),
                (3, 6),
                (3, 7),
                (4, 12),
                (5, 8),
                (6, 9),
                (7, 9),
                (7, 10),
                (8, 5),
                (8, 11),
                (9, 11),
                (10, 9),
                (11, 9),
                (11, 0),
                (12, 8),
            ],
        );
        let dt = dominator_tree(&g, vid(0));
        assert!(dt.validate().is_ok());
        // Known immediate dominators for this flow graph.
        let expected = [
            (1, 0),
            (2, 0),
            (3, 0),
            (4, 0),
            (5, 0),
            (6, 3),
            (7, 3),
            (8, 0),
            (9, 0),
            (10, 7),
            (11, 0),
            (12, 4),
        ];
        for (v, d) in expected {
            assert_eq!(
                dt.idom(vid(v)),
                Some(vid(d)),
                "idom of vertex {v} should be {d}"
            );
        }
    }

    #[test]
    fn unreachable_vertices_are_excluded() {
        let g = graph(5, &[(0, 1), (1, 2), (3, 4)]);
        let dt = dominator_tree(&g, vid(0));
        assert_eq!(dt.num_reachable(), 3);
        assert!(!dt.is_reachable(vid(3)));
        assert_eq!(dt.idom(vid(4)), None);
        assert_eq!(dt.subtree_sizes()[3], 0);
        assert_eq!(dt.subtree_sizes()[0], 3);
    }

    #[test]
    fn single_vertex_and_isolated_root() {
        let g = DiGraph::empty(3);
        let dt = dominator_tree(&g, vid(1));
        assert_eq!(dt.num_reachable(), 1);
        assert_eq!(dt.root(), vid(1));
        assert_eq!(dt.subtree_sizes(), vec![0, 1, 0]);
        assert!(dt.validate().is_ok());
    }

    #[test]
    fn cycle_back_edges_do_not_confuse_dominators() {
        // 0 -> 1 -> 2 -> 1 (cycle), 2 -> 3.
        let g = graph(4, &[(0, 1), (1, 2), (2, 1), (2, 3)]);
        let dt = dominator_tree(&g, vid(0));
        assert_eq!(dt.idom(vid(1)), Some(vid(0)));
        assert_eq!(dt.idom(vid(2)), Some(vid(1)));
        assert_eq!(dt.idom(vid(3)), Some(vid(2)));
    }

    #[test]
    fn multiple_paths_collapse_to_common_dominator() {
        // Figure-1-like topology: the seed has two parallel branches that
        // rejoin, so the rejoin vertex is dominated by the seed only.
        let g = graph(6, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (0, 5), (5, 4)]);
        let dt = dominator_tree(&g, vid(0));
        assert_eq!(dt.idom(vid(3)), Some(vid(0)));
        assert_eq!(dt.idom(vid(4)), Some(vid(0)));
        assert_eq!(dt.subtree_sizes()[0], 6);
    }

    #[test]
    fn masked_tree_skips_blocked_vertices() {
        // 0 -> 1 -> 2, 0 -> 3 -> 2. Blocking 1 leaves 2 dominated by 3.
        let g = graph(4, &[(0, 1), (1, 2), (0, 3), (3, 2)]);
        let mut blocked = vec![false; 4];
        blocked[1] = true;
        let dt = dominator_tree_masked(&g, vid(0), &blocked);
        assert!(!dt.is_reachable(vid(1)));
        assert_eq!(dt.idom(vid(2)), Some(vid(3)));
        assert_eq!(dt.subtree_sizes(), vec![3, 0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "must not be blocked")]
    fn masked_tree_rejects_blocked_root() {
        let g = graph(2, &[(0, 1)]);
        let blocked = vec![true, false];
        let _ = dominator_tree_masked(&g, vid(0), &blocked);
    }

    #[test]
    fn adjacency_interface_matches_graph_interface() {
        let g = graph(5, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]);
        let adj: Vec<Vec<u32>> = (0..5).map(|u| g.out_neighbors(vid(u)).to_vec()).collect();
        let a = dominator_tree(&g, vid(0));
        let b = dominator_tree_from_adjacency(&adj, vid(0));
        assert_eq!(a.idom_raw(), b.idom_raw());
        assert_eq!(a.subtree_sizes(), b.subtree_sizes());
    }

    #[test]
    fn csr_interface_matches_adjacency_interface() {
        let g = graph(6, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (2, 5)]);
        let mut offsets = vec![0u32];
        let mut targets = Vec::new();
        for u in 0..6 {
            targets.extend_from_slice(g.out_neighbors(vid(u)));
            offsets.push(targets.len() as u32);
        }
        let mut ws = DomTreeWorkspace::new();
        let from_csr = ws.compute_csr(6, &offsets, &targets, vid(0)).clone();
        let from_graph = dominator_tree(&g, vid(0));
        assert_eq!(from_csr.idom_raw(), from_graph.idom_raw());
        assert_eq!(from_csr.subtree_sizes(), from_graph.subtree_sizes());
        assert!(from_csr.validate().is_ok());
    }

    #[test]
    fn workspace_reuse_across_different_graphs_is_correct() {
        // The same workspace must produce correct trees when fed graphs of
        // varying size and shape back to back (stale state bleeding between
        // runs is the classic bug in workspace reuse).
        let mut ws = DomTreeWorkspace::new();
        let shapes: Vec<(usize, Vec<(usize, usize)>)> = vec![
            (4, vec![(0, 1), (0, 2), (1, 3), (2, 3)]),
            (2, vec![(0, 1)]),
            (
                7,
                vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 1)],
            ),
            (1, vec![]),
            (5, vec![(0, 1), (1, 2), (3, 4)]),
        ];
        for (n, edges) in shapes {
            let g = graph(n, &edges);
            let reference = dominator_tree(&g, vid(0));
            let ws_tree = ws.compute(n, vid(0), |u, f| {
                for &v in g.out_neighbors(VertexId::from_raw(u)) {
                    f(v);
                }
            });
            assert_eq!(ws_tree.idom_raw(), reference.idom_raw(), "n={n}");
            assert_eq!(ws_tree.subtree_sizes(), reference.subtree_sizes());
            assert!(ws_tree.validate().is_ok());
        }
    }

    #[test]
    fn workspace_reuse_agrees_with_oracle_on_random_graphs() {
        use crate::naive::naive_immediate_dominators;
        let mut ws = DomTreeWorkspace::new();
        // Deterministic LCG-driven random graphs of varying size.
        let mut state = 0x0123_4567_89AB_CDEFu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for round in 0..40 {
            let n = 2 + next() % 14;
            let m = next() % 40;
            let edges: Vec<(usize, usize)> = (0..m)
                .map(|_| (next() % n, next() % n))
                .filter(|&(u, v)| u != v)
                .collect();
            let g = graph(n, &edges);
            let root = vid(next() % n);
            let oracle = naive_immediate_dominators(&g, root);
            let tree = ws.compute(n, root, |u, f| {
                for &v in g.out_neighbors(VertexId::from_raw(u)) {
                    f(v);
                }
            });
            for (v, expected) in oracle.iter().enumerate() {
                assert_eq!(
                    tree.idom(vid(v)),
                    *expected,
                    "round {round}: idom mismatch at vertex {v} (n={n})"
                );
            }
        }
    }

    #[test]
    fn deep_path_does_not_overflow_the_stack() {
        // 50k-vertex path exercises the iterative DFS and iterative
        // path compression.
        let n = 50_000;
        let edges: Vec<(usize, usize)> = (1..n).map(|i| (i - 1, i)).collect();
        let g = graph(n, &edges);
        let dt = dominator_tree(&g, vid(0));
        assert_eq!(dt.num_reachable(), n);
        assert_eq!(dt.subtree_sizes()[0], n as u64);
        assert_eq!(dt.idom(vid(n - 1)), Some(vid(n - 2)));
    }
}
