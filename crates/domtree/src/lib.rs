//! # imin-domtree
//!
//! Dominator-tree construction for the vertex-blocking influence-minimization
//! workspace.
//!
//! The central insight of the reproduced paper (§V-B3/§V-B4) is that, in a
//! live-edge sample `g` rooted at the seed `s`, the decrease of spread caused
//! by blocking a vertex `u` equals `σ→u(s, g)` — the number of vertices all
//! of whose paths from `s` pass through `u` — and that this quantity is
//! exactly the size of the subtree rooted at `u` in the **dominator tree** of
//! `g` (Theorem 6). Computing one dominator tree per sample therefore yields
//! the spread decrease of *every* candidate blocker at once.
//!
//! This crate provides:
//!
//! * [`lengauer_tarjan`] — the Lengauer–Tarjan algorithm (simple eval-link
//!   variant), the production path used by the sampler; almost-linear
//!   `O(m·α(m,n))` with the sophisticated linking, `O(m log n)` with the
//!   simple linking implemented here, which is the variant the original
//!   paper's reference implementation \[53\] recommends for practical graphs.
//!   The [`DomTreeWorkspace`] entry point owns every scratch buffer of the
//!   algorithm (flattened predecessor/bucket arrays and the output tree), so
//!   the per-sample hot loop of Algorithm 2 builds θ dominator trees with
//!   zero steady-state heap allocations.
//! * [`iterative`] — the Cooper–Harvey–Kennedy data-flow algorithm, a
//!   simpler but asymptotically slower method used as a cross-check oracle
//!   in tests and ablation benchmarks.
//! * [`naive`] — textbook-definition dominators ("u dominates v iff removing
//!   u disconnects v from the root"), cubic time, used only to validate the
//!   other two on small random graphs.
//! * [`DomTree`] — the resulting tree with subtree sizes (the quantity
//!   Algorithm 2 accumulates into Δ\[u\]), depth queries and ancestor tests.
//!
//! ```
//! use imin_graph::{DiGraph, VertexId};
//! use imin_domtree::dominator_tree;
//!
//! // 0 -> 1 -> 3, 0 -> 2 -> 3: vertex 3 is dominated only by the root.
//! let g = DiGraph::from_edges(4, vec![
//!     (VertexId::new(0), VertexId::new(1), 1.0),
//!     (VertexId::new(0), VertexId::new(2), 1.0),
//!     (VertexId::new(1), VertexId::new(3), 1.0),
//!     (VertexId::new(2), VertexId::new(3), 1.0),
//! ]).unwrap();
//! let dt = dominator_tree(&g, VertexId::new(0));
//! assert_eq!(dt.idom(VertexId::new(3)), Some(VertexId::new(0)));
//! assert_eq!(dt.subtree_sizes()[0], 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod iterative;
pub mod lengauer_tarjan;
pub mod naive;
pub mod tree;

pub use lengauer_tarjan::{
    dominator_tree, dominator_tree_from_adjacency, dominator_tree_masked, DomTreeWorkspace,
};
pub use tree::DomTree;
