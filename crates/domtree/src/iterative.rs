//! The Cooper–Harvey–Kennedy iterative dominator algorithm.
//!
//! A simple data-flow formulation of dominators: process the vertices in
//! reverse post-order and repeatedly intersect the dominator sets of
//! predecessors (represented implicitly by walking up the current idom
//! chains) until a fixed point is reached. Worst-case complexity is
//! `O(n · m)` but convergence is fast on real graphs.
//!
//! In this workspace the iterative algorithm is the **oracle** against which
//! the production Lengauer–Tarjan implementation is cross-checked (property
//! tests and the `domtree` ablation bench); it is intentionally written for
//! clarity rather than speed.

use crate::tree::DomTree;
use imin_graph::{DiGraph, VertexId};

const NONE: u32 = u32::MAX;

/// Computes the dominator tree with the iterative data-flow algorithm.
pub fn iterative_dominator_tree(graph: &DiGraph, root: VertexId) -> DomTree {
    let n = graph.num_vertices();
    assert!(root.index() < n, "root {root} out of range");

    // Reverse post-order of the reachable subgraph.
    let postorder = postorder_from(graph, root);
    let rpo: Vec<u32> = postorder.iter().rev().copied().collect();
    let mut rpo_number = vec![u32::MAX; n];
    for (i, &v) in rpo.iter().enumerate() {
        rpo_number[v as usize] = i as u32;
    }
    let mut reachable = vec![false; n];
    for &v in &rpo {
        reachable[v as usize] = true;
    }

    let mut idom = vec![NONE; n];
    idom[root.index()] = root.raw(); // temporary self-idom simplifies intersect

    let intersect = |mut a: u32, mut b: u32, idom: &[u32], rpo_number: &[u32]| -> u32 {
        while a != b {
            while rpo_number[a as usize] > rpo_number[b as usize] {
                a = idom[a as usize];
            }
            while rpo_number[b as usize] > rpo_number[a as usize] {
                b = idom[b as usize];
            }
        }
        a
    };

    let mut changed = true;
    while changed {
        changed = false;
        for &v in rpo.iter().skip(1) {
            // First processed predecessor that already has an idom.
            let mut new_idom = NONE;
            for (p, _) in graph.in_edges(VertexId::from_raw(v)) {
                let p = p.raw();
                if !reachable[p as usize] || idom[p as usize] == NONE {
                    continue;
                }
                new_idom = if new_idom == NONE {
                    p
                } else {
                    intersect(p, new_idom, &idom, &rpo_number)
                };
            }
            if new_idom != NONE && idom[v as usize] != new_idom {
                idom[v as usize] = new_idom;
                changed = true;
            }
        }
    }

    idom[root.index()] = NONE;
    // Reverse post-order lists every vertex after its immediate dominator,
    // so it doubles as the preorder required by `DomTree`.
    DomTree::from_parts(root, idom, reachable, rpo)
}

/// Post-order of the vertices reachable from `root` (iterative DFS).
fn postorder_from(graph: &DiGraph, root: VertexId) -> Vec<u32> {
    let n = graph.num_vertices();
    let mut visited = vec![false; n];
    let mut order = Vec::new();
    let mut stack: Vec<(u32, usize)> = vec![(root.raw(), 0)];
    visited[root.index()] = true;
    while let Some(&mut (u, ref mut next)) = stack.last_mut() {
        let succ = graph.out_neighbors(VertexId::from_raw(u));
        if *next < succ.len() {
            let v = succ[*next];
            *next += 1;
            if !visited[v as usize] {
                visited[v as usize] = true;
                stack.push((v, 0));
            }
        } else {
            order.push(u);
            stack.pop();
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lengauer_tarjan::dominator_tree;

    fn vid(i: usize) -> VertexId {
        VertexId::new(i)
    }

    fn graph(n: usize, edges: &[(usize, usize)]) -> DiGraph {
        DiGraph::from_edges(
            n,
            edges
                .iter()
                .map(|&(u, v)| (vid(u), vid(v), 1.0))
                .collect::<Vec<_>>(),
        )
        .unwrap()
    }

    #[test]
    fn agrees_with_lengauer_tarjan_on_diamond() {
        let g = graph(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let a = iterative_dominator_tree(&g, vid(0));
        let b = dominator_tree(&g, vid(0));
        assert_eq!(a.idom_raw(), b.idom_raw());
        assert!(a.validate().is_ok());
    }

    #[test]
    fn agrees_on_textbook_flowgraph() {
        let g = graph(
            13,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 4),
                (2, 1),
                (2, 4),
                (2, 5),
                (3, 6),
                (3, 7),
                (4, 12),
                (5, 8),
                (6, 9),
                (7, 9),
                (7, 10),
                (8, 5),
                (8, 11),
                (9, 11),
                (10, 9),
                (11, 9),
                (11, 0),
                (12, 8),
            ],
        );
        let a = iterative_dominator_tree(&g, vid(0));
        let b = dominator_tree(&g, vid(0));
        assert_eq!(a.idom_raw(), b.idom_raw());
        assert_eq!(a.subtree_sizes(), b.subtree_sizes());
    }

    #[test]
    fn handles_unreachable_vertices_and_cycles() {
        let g = graph(6, &[(0, 1), (1, 2), (2, 0), (2, 3), (4, 5)]);
        let t = iterative_dominator_tree(&g, vid(0));
        assert!(t.validate().is_ok());
        assert_eq!(t.num_reachable(), 4);
        assert_eq!(t.idom(vid(3)), Some(vid(2)));
        assert!(!t.is_reachable(vid(4)));
    }

    #[test]
    fn single_vertex_graph() {
        let g = DiGraph::empty(1);
        let t = iterative_dominator_tree(&g, vid(0));
        assert_eq!(t.num_reachable(), 1);
        assert_eq!(t.idom(vid(0)), None);
    }
}
