//! Brute-force dominators straight from the definition.
//!
//! Definition 5 of the paper: `u` dominates `v` when every path from the
//! seed `s` to `v` passes through `u`. Equivalently, `v` is unreachable from
//! `s` once `u` is removed. This module computes dominator sets by doing one
//! BFS per removed vertex (`O(n·m)` per query set, cubic overall), which is
//! hopeless for real graphs but perfect as a test oracle: it is a direct
//! transcription of the definition and of Theorem 6's characterisation of
//! `σ→u(s, g)`.

use imin_graph::traversal::TraversalWorkspace;
use imin_graph::{DiGraph, VertexId};

/// Returns `dom[v]` = the set of dominators of `v` (vertices whose removal
/// disconnects `v` from `root`, plus `v` itself) for every reachable `v`;
/// unreachable vertices get an empty set.
pub fn dominator_sets(graph: &DiGraph, root: VertexId) -> Vec<Vec<VertexId>> {
    let n = graph.num_vertices();
    let mut ws = TraversalWorkspace::new(n);
    let mut reach = vec![false; n];
    ws.bfs_reachable_count(graph, &[root], |_| false);
    for v in graph.vertices() {
        reach[v.index()] = ws.was_visited(v);
    }

    let mut doms: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    for v in graph.vertices() {
        if reach[v.index()] {
            doms[v.index()].push(v);
        }
    }
    for u in graph.vertices() {
        if !reach[u.index()] || u == root {
            continue;
        }
        // Which vertices become unreachable when u is removed?
        ws.bfs_reachable_count(graph, &[root], |x| x == u);
        for v in graph.vertices() {
            if reach[v.index()] && v != u && !ws.was_visited(v) {
                doms[v.index()].push(u);
            }
        }
    }
    // The root dominates every reachable vertex.
    for v in graph.vertices() {
        if reach[v.index()] && v != root {
            doms[v.index()].push(root);
        }
    }
    for d in &mut doms {
        d.sort_unstable();
        d.dedup();
    }
    doms
}

/// Immediate dominators computed from the brute-force dominator sets.
///
/// The dominators of a vertex form a chain under the dominance relation, so
/// the immediate dominator is the proper dominator with the largest
/// dominator set of its own (the deepest one).
pub fn naive_immediate_dominators(graph: &DiGraph, root: VertexId) -> Vec<Option<VertexId>> {
    let doms = dominator_sets(graph, root);
    let n = graph.num_vertices();
    let mut idom = vec![None; n];
    for v in graph.vertices() {
        if v == root || doms[v.index()].is_empty() {
            continue;
        }
        let mut best: Option<VertexId> = None;
        let mut best_depth = 0usize;
        for &u in &doms[v.index()] {
            if u == v {
                continue;
            }
            let depth = doms[u.index()].len();
            if best.is_none() || depth > best_depth {
                best = Some(u);
                best_depth = depth;
            }
        }
        idom[v.index()] = best;
    }
    idom
}

/// Brute-force `σ→u(s, g)`: the number of vertices that become unreachable
/// from `root` when `u` is removed, `u` included (Table II). This is the
/// quantity Theorem 6 equates with the dominator-subtree size.
pub fn sigma_through(graph: &DiGraph, root: VertexId, u: VertexId) -> usize {
    if u == root {
        // Removing the seed itself removes the entire reachable set; the
        // algorithms never block a seed, but the oracle stays total.
        return imin_graph::traversal::reachable_count(graph, &[root]);
    }
    let before = imin_graph::traversal::reachable_count(graph, &[root]);
    let mut blocked = vec![false; graph.num_vertices()];
    blocked[u.index()] = true;
    let after = imin_graph::traversal::reachable_count_blocked(graph, &[root], &blocked);
    before - after
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lengauer_tarjan::dominator_tree;

    fn vid(i: usize) -> VertexId {
        VertexId::new(i)
    }

    fn graph(n: usize, edges: &[(usize, usize)]) -> DiGraph {
        DiGraph::from_edges(
            n,
            edges
                .iter()
                .map(|&(u, v)| (vid(u), vid(v), 1.0))
                .collect::<Vec<_>>(),
        )
        .unwrap()
    }

    #[test]
    fn dominator_sets_on_chain() {
        let g = graph(3, &[(0, 1), (1, 2)]);
        let doms = dominator_sets(&g, vid(0));
        assert_eq!(doms[2], vec![vid(0), vid(1), vid(2)]);
        assert_eq!(doms[1], vec![vid(0), vid(1)]);
        assert_eq!(doms[0], vec![vid(0)]);
    }

    #[test]
    fn naive_idoms_match_lengauer_tarjan() {
        let g = graph(
            7,
            &[
                (0, 1),
                (0, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (2, 5),
                (5, 4),
                (4, 6),
            ],
        );
        let naive = naive_immediate_dominators(&g, vid(0));
        let lt = dominator_tree(&g, vid(0));
        for v in g.vertices() {
            assert_eq!(naive[v.index()], lt.idom(v), "idom mismatch at {v}");
        }
    }

    #[test]
    fn sigma_through_equals_subtree_size() {
        let g = graph(6, &[(0, 1), (1, 2), (1, 3), (0, 4), (4, 5), (3, 5)]);
        let dt = dominator_tree(&g, vid(0));
        let sizes = dt.subtree_sizes();
        for v in g.vertices().skip(1) {
            assert_eq!(
                sigma_through(&g, vid(0), v) as u64,
                sizes[v.index()],
                "σ→u mismatch at {v}"
            );
        }
    }

    #[test]
    fn unreachable_vertices_have_empty_sets() {
        let g = graph(4, &[(0, 1), (2, 3)]);
        let doms = dominator_sets(&g, vid(0));
        assert!(doms[2].is_empty());
        assert!(doms[3].is_empty());
        let idom = naive_immediate_dominators(&g, vid(0));
        assert_eq!(idom[2], None);
        assert_eq!(idom[3], None);
    }

    #[test]
    fn sigma_through_root_is_total_reachability() {
        let g = graph(3, &[(0, 1), (1, 2)]);
        assert_eq!(sigma_through(&g, vid(0), vid(0)), 3);
    }
}
