//! The §V-E extension: running the blocking algorithms under the general
//! triggering model (here, linear threshold) instead of independent cascade.
//!
//! Run with:
//! ```text
//! cargo run -p imin-examples --release --bin triggering_model
//! ```

use imin_core::triggering::{evaluate_triggering_spread, greedy_replace_triggering};
use imin_core::AlgorithmConfig;
use imin_diffusion::triggering::{IcTriggering, LtTriggering, TriggeringModel};
use imin_diffusion::ProbabilityModel;
use imin_graph::{generators, DiGraph, VertexId};

fn contain<M: TriggeringModel + Clone>(model: &M, graph: &DiGraph, seed: VertexId, budget: usize) {
    let config = AlgorithmConfig::default().with_theta(1_500);
    let forbidden: Vec<bool> = (0..graph.num_vertices())
        .map(|i| i == seed.index())
        .collect();
    let before = evaluate_triggering_spread(model, graph, &[seed], &[], 5_000, 11)
        .expect("spread evaluation");
    let selection = greedy_replace_triggering(model, graph, seed, &forbidden, budget, &config)
        .expect("GreedyReplace under triggering model");
    let after = evaluate_triggering_spread(model, graph, &[seed], &selection.blockers, 5_000, 11)
        .expect("spread evaluation");
    println!(
        "{:<4} budget {:>3}: spread {:.2} -> {:.2} ({} blockers, {:.3}s)",
        model.label(),
        budget,
        before,
        after,
        selection.len(),
        selection.stats.elapsed.as_secs_f64()
    );
}

fn main() {
    // A scale-free network with weighted-cascade edge weights: under LT the
    // weights of the in-edges of a vertex then sum to exactly 1, the
    // textbook linear-threshold configuration.
    let topology = generators::preferential_attachment(3_000, 3, true, 1.0, 5).expect("generation");
    let graph = ProbabilityModel::WeightedCascade
        .apply(&topology)
        .expect("probability model");
    // Seed the misinformation at the most-followed account: vertex 0 never
    // attaches to anyone, so its cascade would die immediately.
    let seed = graph
        .vertices()
        .max_by_key(|&v| graph.out_degree(v))
        .expect("nonempty graph");
    println!(
        "network: {} vertices, {} edges; misinformation seed {}",
        graph.num_vertices(),
        graph.num_edges(),
        seed
    );
    println!("\nGreedyReplace under two triggering models:");
    for budget in [5usize, 20] {
        contain(&IcTriggering, &graph, seed, budget);
        contain(&LtTriggering, &graph, seed, budget);
    }
    println!("\nIC rows use independent-cascade triggering sets (identical to the IC model);");
    println!("LT rows use linear-threshold triggering sets — same algorithms, different sampler.");
}
