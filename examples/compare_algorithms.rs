//! Side-by-side comparison of every algorithm in the crate on the paper's
//! Figure-1 toy graph plus a mid-sized random network, including the
//! Monte-Carlo baseline and the exhaustive Exact search where feasible.
//!
//! Run with:
//! ```text
//! cargo run -p imin-examples --release --bin compare_algorithms
//! ```

use imin_core::{Algorithm, AlgorithmConfig, ImninProblem};
use imin_datasets::toy::figure1_graph;
use imin_diffusion::ProbabilityModel;
use imin_graph::{generators, VertexId};

fn report(problem: &ImninProblem, budget: usize, config: &AlgorithmConfig, skip_slow: bool) {
    println!(
        "{:<16} {:>8} {:>12} {:>10}",
        "algorithm", "budget", "spread", "time_s"
    );
    for &algorithm in Algorithm::all() {
        if skip_slow && matches!(algorithm, Algorithm::BaselineGreedy | Algorithm::Exact) {
            println!(
                "{:<16} {:>8} {:>12} {:>10}",
                algorithm.label(),
                budget,
                "skipped",
                "-"
            );
            continue;
        }
        match problem.solve(algorithm, budget, config) {
            Ok(selection) => {
                let spread = problem
                    .evaluate_spread(&selection.blockers, 3_000, 5)
                    .expect("evaluation");
                println!(
                    "{:<16} {:>8} {:>12.3} {:>10.3}",
                    algorithm.label(),
                    budget,
                    spread,
                    selection.stats.elapsed.as_secs_f64()
                );
            }
            Err(err) => println!(
                "{:<16} {:>8} {:>12} {:>10}",
                algorithm.label(),
                budget,
                format!("error: {err}"),
                "-"
            ),
        }
    }
    println!();
}

fn main() {
    let config = AlgorithmConfig::default()
        .with_theta(1_000)
        .with_mcs_rounds(1_000);

    println!("== Toy graph of Figure 1 (seed v1, budget 2) ==");
    let (toy, toy_seed) = figure1_graph();
    let toy_problem = ImninProblem::new(&toy, vec![toy_seed]).expect("toy problem");
    report(&toy_problem, 2, &config, false);

    println!("== Random scale-free network (5 000 vertices, budget 20) ==");
    let topology =
        generators::preferential_attachment(5_000, 3, true, 1.0, 77).expect("generation");
    let graph = ProbabilityModel::WeightedCascade
        .apply(&topology)
        .expect("probability model");
    // Seed the misinformation at the two most-followed accounts; the earliest
    // vertices never attach to anyone, so their cascades would die instantly.
    let mut by_out_degree: Vec<VertexId> = graph.vertices().collect();
    by_out_degree.sort_by_key(|&v| std::cmp::Reverse(graph.out_degree(v)));
    let problem =
        ImninProblem::new(&graph, vec![by_out_degree[0], by_out_degree[1]]).expect("problem");
    // BaselineGreedy and Exact are quadratic/exponential here — skip them,
    // exactly the situation Figures 7 and 8 of the paper illustrate.
    report(&problem, 20, &config, true);
}
