//! Resident engine: load a network once, build the sample pool once, then
//! answer a stream of containment questions interactively fast.
//!
//! This is the in-process face of what `imin-serve` exposes over TCP: the
//! θ live-edge realisations depend only on the graph and the diffusion
//! model, so they are materialised a single time and every query — any
//! seed set, any budget, any pool-capable algorithm of the
//! [`imin_engine::AlgorithmKind`] registry — only pays for re-rooting them.
//!
//! Run with:
//! ```text
//! cargo run --release --example resident_engine
//! ```

use imin_engine::{AlgorithmKind, Engine, Query};
use std::time::Instant;

fn main() {
    // 1. A synthetic social network under the weighted-cascade model.
    let topology = imin_graph::generators::preferential_attachment(5_000, 4, true, 1.0, 42)
        .expect("graph generation");
    let graph = imin_diffusion::ProbabilityModel::WeightedCascade
        .apply(&topology)
        .expect("probability assignment");
    println!(
        "network: {} users, {} follow edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // 2. Prime the engine: one graph load, one pool build.
    let mut engine = Engine::new();
    engine.load_graph(graph, "pa-5000/WC".into());
    let theta = 2_000;
    let info = engine.build_pool(theta, 7).expect("pool build");
    println!(
        "pool: θ={} realisations, {} live edges, {:.1} MiB, built in {:?} on {} thread(s)",
        info.theta,
        info.live_edges,
        info.memory_bytes as f64 / (1024.0 * 1024.0),
        info.build_time,
        info.threads
    );

    // 3. A stream of questions against the same resident pool: different
    //    rumour sources, different budgets, any algorithm the registry
    //    names — the engine dispatches every query through the one
    //    `AlgorithmKind` registry, so the paper's greedies and the cheap
    //    heuristics share a call shape.
    let questions = [
        ("advanced", vec![0u32], 10),
        ("replace", vec![1, 17], 5),
        ("outdegree", vec![1, 17], 5), // heuristic baseline for the same ask
        ("advanced", vec![42], 8),
        ("advanced", vec![0], 10), // repeat → cache hit
    ];
    for (name, seeds, budget) in questions {
        let algorithm: AlgorithmKind = name.parse().expect("registered algorithm");
        let query = Query {
            seeds: seeds
                .iter()
                .map(|&s| imin_graph::VertexId::from_raw(s))
                .collect(),
            budget,
            algorithm,
            intervention: imin_core::Intervention::BlockVertices,
        };
        let result = engine.query(&query).expect("query");
        println!(
            "seeds={seeds:?} budget={budget} alg={algorithm}: {} blockers, spread≈{:.1}, {:?}{}",
            result.blockers.len(),
            result.estimated_spread.unwrap_or(f64::NAN),
            result.elapsed,
            if result.from_cache {
                " (cache hit)"
            } else {
                ""
            }
        );
    }

    // 4. Batched queries fan out across the worker pool in one call.
    let batch: Vec<Query> = (0..6)
        .map(|i| Query {
            seeds: vec![imin_graph::VertexId::new(100 + i)],
            budget: 5,
            algorithm: AlgorithmKind::AdvancedGreedy,
            intervention: imin_core::Intervention::BlockVertices,
        })
        .collect();
    let start = Instant::now();
    let answers = engine.run_queries(&batch);
    let ok = answers.iter().filter(|r| r.is_ok()).count();
    println!(
        "batch: {ok}/{} queries answered in {:?} ({:.1} queries/sec)",
        batch.len(),
        start.elapsed(),
        batch.len() as f64 / start.elapsed().as_secs_f64()
    );

    let stats = engine.stats();
    println!(
        "engine stats: {} queries, {} cache hits, {} cached entries",
        stats.queries,
        stats.cache_hits,
        engine.cache_entries()
    );
}
