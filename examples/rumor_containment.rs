//! Rumour containment on a realistic dataset stand-in.
//!
//! The scenario the paper's introduction motivates: misinformation starts at
//! a handful of accounts in an e-mail/social network and the platform can
//! only afford to suspend a limited number of accounts. The example compares
//! how well different intervention policies (do nothing, random suspension,
//! suspend the loudest accounts, AdvancedGreedy, GreedyReplace) contain the
//! expected spread, at several budgets.
//!
//! Run with:
//! ```text
//! cargo run -p imin-examples --release --bin rumor_containment
//! ```

use imin_core::{Algorithm, AlgorithmConfig, ImninProblem};
use imin_datasets::{Dataset, DatasetScale};
use imin_diffusion::ProbabilityModel;
use imin_graph::VertexId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // The EmailCore stand-in (or the real SNAP file when IMIN_DATA_DIR is
    // set), with trivalency propagation probabilities.
    let (topology, real) = Dataset::EmailCore
        .load_or_generate(DatasetScale::Bench)
        .expect("dataset");
    println!(
        "dataset: email-core ({} data), {} vertices, {} edges",
        if real {
            "real SNAP"
        } else {
            "synthetic stand-in"
        },
        topology.num_vertices(),
        topology.num_edges()
    );
    let graph = ProbabilityModel::Trivalency { seed: 2023 }
        .apply(&topology)
        .expect("probability model");

    // Ten rumour sources with at least one outgoing contact.
    let mut rng = StdRng::seed_from_u64(99);
    let mut seeds: Vec<VertexId> = Vec::new();
    while seeds.len() < 10 {
        let v = VertexId::new(rng.gen_range(0..graph.num_vertices()));
        if graph.out_degree(v) > 0 && !seeds.contains(&v) {
            seeds.push(v);
        }
    }
    let problem = ImninProblem::new(&graph, seeds).expect("problem");
    let config = AlgorithmConfig::default()
        .with_theta(2_000)
        .with_mcs_rounds(2_000);

    let do_nothing = problem.evaluate_spread(&[], 5_000, 1).expect("evaluation");
    println!("\nexpected spread with no intervention: {do_nothing:.2}\n");
    println!(
        "{:<10} {:>8} {:>12} {:>12} {:>10}",
        "policy", "budget", "spread", "contained%", "time_s"
    );

    for budget in [10usize, 30, 60] {
        for (name, algorithm) in [
            ("random", Algorithm::Random),
            ("loudest", Algorithm::OutDegree),
            ("AG", Algorithm::AdvancedGreedy),
            ("GR", Algorithm::GreedyReplace),
        ] {
            let selection = problem
                .solve(algorithm, budget, &config)
                .expect("selection");
            let spread = problem
                .evaluate_spread(&selection.blockers, 5_000, 1)
                .expect("evaluation");
            println!(
                "{:<10} {:>8} {:>12.2} {:>11.1}% {:>10.3}",
                name,
                budget,
                spread,
                100.0 * (do_nothing - spread) / do_nothing,
                selection.stats.elapsed.as_secs_f64()
            );
        }
        println!();
    }
}
