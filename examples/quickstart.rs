//! Quickstart: build a small social network, mark a rumour source, and ask
//! GreedyReplace which accounts to suspend to contain the rumour.
//!
//! Run with:
//! ```text
//! cargo run -p imin-examples --release --bin quickstart
//! ```

use imin_core::{Algorithm, AlgorithmConfig, ImninProblem};
use imin_diffusion::ProbabilityModel;
use imin_graph::{generators, VertexId};

fn main() {
    // 1. A synthetic social network: 2 000 users, heavy-tailed connectivity.
    let topology =
        generators::preferential_attachment(2_000, 4, true, 1.0, 42).expect("graph generation");
    println!(
        "network: {} users, {} follow edges",
        topology.num_vertices(),
        topology.num_edges()
    );

    // 2. Assign propagation probabilities with the weighted-cascade model
    //    (every edge (u, v) fires with probability 1 / in-degree(v)).
    let graph = ProbabilityModel::WeightedCascade
        .apply(&topology)
        .expect("probability assignment");

    // 3. The rumour starts at three accounts.
    let seeds = vec![VertexId::new(0), VertexId::new(17), VertexId::new(401)];
    let problem = ImninProblem::new(&graph, seeds.clone()).expect("problem construction");

    // 4. How bad is it if we do nothing?
    let baseline = problem
        .evaluate_spread(&[], 5_000, 7)
        .expect("spread evaluation");
    println!("expected spread with no intervention: {baseline:.1} users");

    // 5. Pick 15 accounts to block with GreedyReplace (Algorithm 4).
    let config = AlgorithmConfig::default()
        .with_theta(2_000)
        .with_mcs_rounds(5_000);
    let selection = problem
        .solve(Algorithm::GreedyReplace, 15, &config)
        .expect("blocker selection");
    println!(
        "GreedyReplace blocked {} accounts in {:.3}s: {:?}",
        selection.len(),
        selection.stats.elapsed.as_secs_f64(),
        selection
            .blockers
            .iter()
            .map(|v| v.index())
            .collect::<Vec<_>>()
    );

    // 6. Evaluate the intervention.
    let after = problem
        .evaluate_spread(&selection.blockers, 5_000, 7)
        .expect("spread evaluation");
    println!(
        "expected spread after blocking: {after:.1} users \
         ({:.1}% of the uncontained spread)",
        100.0 * after / baseline
    );
}
