//! Integration tests pinning the repository to the numbers the paper states
//! for its running example (Figure 1, Examples 1–4, Table III).

use imin_core::decrease::{decrease_es_computation, DecreaseConfig};
use imin_core::{Algorithm, AlgorithmConfig, ImninProblem};
use imin_datasets::toy::{figure1_expected_decreases, figure1_graph, FIGURE1_EXPECTED_SPREAD, V};
use imin_diffusion::montecarlo::MonteCarloEstimator;

fn toy_problem() -> ImninProblem {
    let (graph, seed) = figure1_graph();
    ImninProblem::new(&graph, vec![seed]).expect("toy problem")
}

#[test]
fn example1_expected_spread_is_7_66() {
    let problem = toy_problem();
    // Exact evaluation.
    let exact = problem.evaluate_spread_exact(&[], 20).unwrap();
    assert!((exact - FIGURE1_EXPECTED_SPREAD).abs() < 1e-9);
    // Monte-Carlo evaluation converges to the same value.
    let mcs = problem.evaluate_spread(&[], 60_000, 3).unwrap();
    assert!(
        (mcs - FIGURE1_EXPECTED_SPREAD).abs() < 0.05,
        "MCS estimate {mcs} too far from 7.66"
    );
}

#[test]
fn example1_blocking_v5_leaves_spread_3() {
    let problem = toy_problem();
    let spread = problem.evaluate_spread_exact(&[V(5)], 20).unwrap();
    assert!((spread - 3.0).abs() < 1e-9);
    let v2 = problem.evaluate_spread_exact(&[V(2)], 20).unwrap();
    assert!((v2 - 6.66).abs() < 1e-9);
}

#[test]
fn example2_dominator_tree_estimates_match_true_decreases() {
    // Algorithm 2's sampled estimate of Δ[u] must converge to the exact
    // decreases listed in Example 2 (Δ(v5) = 4.66, Δ(v9) = 1.11, ...).
    let (graph, seed) = figure1_graph();
    let estimate = decrease_es_computation(
        &graph,
        seed,
        &vec![false; graph.num_vertices()],
        &DecreaseConfig {
            theta: 80_000,
            threads: 2,
            seed: 99,
        },
    )
    .unwrap();
    for (v, expected) in figure1_expected_decreases() {
        assert!(
            (estimate.delta[v.index()] - expected).abs() < 0.05,
            "Δ({v}) estimate {} too far from {expected}",
            estimate.delta[v.index()]
        );
    }
    assert!((estimate.average_reached - FIGURE1_EXPECTED_SPREAD).abs() < 0.05);
}

#[test]
fn table3_greedy_and_outneighbors_and_gr() {
    let problem = toy_problem();
    let config = AlgorithmConfig::fast_for_tests().with_theta(4_000);

    // Greedy (AG) with b = 1 blocks v5 → spread 3.
    let ag1 = problem
        .solve(Algorithm::AdvancedGreedy, 1, &config)
        .unwrap();
    assert_eq!(ag1.blockers, vec![V(5)]);
    let ag1_spread = problem.evaluate_spread_exact(&ag1.blockers, 20).unwrap();
    assert!((ag1_spread - 3.0).abs() < 1e-9);

    // Greedy with b = 2 reaches spread 2 (v5 plus v2 or v4).
    let ag2 = problem
        .solve(Algorithm::AdvancedGreedy, 2, &config)
        .unwrap();
    let ag2_spread = problem.evaluate_spread_exact(&ag2.blockers, 20).unwrap();
    assert!((ag2_spread - 2.0).abs() < 1e-9);

    // OutNeighbors with b = 2 blocks {v2, v4} → spread 1.
    let on2 = problem.solve(Algorithm::OutNeighbors, 2, &config).unwrap();
    let mut on2_sorted = on2.blockers.clone();
    on2_sorted.sort_unstable();
    assert_eq!(on2_sorted, vec![V(2), V(4)]);

    // GreedyReplace achieves the best of both: 3 at b = 1, 1 at b = 2.
    let gr1 = problem.solve(Algorithm::GreedyReplace, 1, &config).unwrap();
    assert_eq!(gr1.blockers, vec![V(5)]);
    let gr2 = problem.solve(Algorithm::GreedyReplace, 2, &config).unwrap();
    let gr2_spread = problem.evaluate_spread_exact(&gr2.blockers, 20).unwrap();
    assert!((gr2_spread - 1.0).abs() < 1e-9);
}

#[test]
fn exact_search_confirms_v5_is_optimal_for_budget_1() {
    let problem = toy_problem();
    let config = AlgorithmConfig::fast_for_tests().with_mcs_rounds(2_000);
    let exact = problem.solve(Algorithm::Exact, 1, &config).unwrap();
    assert_eq!(exact.blockers, vec![V(5)]);
}

#[test]
fn baseline_greedy_agrees_with_advanced_greedy_on_the_toy_graph() {
    let problem = toy_problem();
    let bg = problem
        .solve(
            Algorithm::BaselineGreedy,
            1,
            &AlgorithmConfig::fast_for_tests().with_mcs_rounds(3_000),
        )
        .unwrap();
    assert_eq!(bg.blockers, vec![V(5)]);
    // And the Monte-Carlo estimator itself matches the exact spread.
    let (graph, seed) = figure1_graph();
    let est = MonteCarloEstimator::new(40_000)
        .with_seed(5)
        .expected_spread(&graph, &[seed])
        .unwrap();
    assert!(est.is_consistent_with(FIGURE1_EXPECTED_SPREAD, 0.05));
}
