//! The unified `ContainmentRequest` / `BlockerSolver` API: builder
//! validation, byte-identical parity between the legacy free-function
//! shims and the solver registry on both backends, and multi-seed
//! agreement between the `Fresh` and `Pooled` backends on a large graph.

use imin_core::advanced_greedy::{advanced_greedy, advanced_greedy_with_pool};
use imin_core::baseline_greedy::baseline_greedy;
use imin_core::exact_blocker::{exact_blocker_search, ExactSearchConfig, SpreadEvaluator};
use imin_core::greedy_replace::{greedy_replace, greedy_replace_with_pool};
use imin_core::heuristics::{
    degree_blockers, out_degree_blockers, out_neighbor_blockers, pagerank_blockers, random_blockers,
};
use imin_core::{
    AlgorithmConfig, AlgorithmKind, BlockerSelection, ContainmentRequest, ForbiddenSet, IminError,
    SamplePool, SketchPool,
};
use imin_diffusion::ProbabilityModel;
use imin_graph::{generators, DiGraph, VertexId};

fn vid(i: usize) -> VertexId {
    VertexId::new(i)
}

/// A ~300-vertex weighted-cascade graph: probabilistic, multi-threaded
/// sampling takes different RNG streams per thread, so shim parity across
/// thread counts is a real test, not a tautology.
fn wc_graph() -> DiGraph {
    let topology = generators::preferential_attachment(300, 3, true, 1.0, 41).unwrap();
    ProbabilityModel::WeightedCascade.apply(&topology).unwrap()
}

fn assert_same_selection(
    kind: AlgorithmKind,
    threads: usize,
    a: &BlockerSelection,
    b: &BlockerSelection,
) {
    assert_eq!(
        a.blockers, b.blockers,
        "{kind:?} (threads={threads}): blockers diverged"
    );
    assert_eq!(
        a.estimated_spread, b.estimated_spread,
        "{kind:?} (threads={threads}): spread estimates diverged"
    );
    assert_eq!(a.stats.rounds, b.stats.rounds, "{kind:?}: rounds diverged");
    assert_eq!(
        a.stats.samples_drawn, b.stats.samples_drawn,
        "{kind:?}: sample counts diverged"
    );
}

#[test]
fn builder_rejects_every_malformed_request() {
    let g = wc_graph();
    let ok = ContainmentRequest::builder(&g)
        .seed(vid(0))
        .budget(2)
        .fresh(50, 1, 1)
        .build();
    assert!(ok.is_ok());
    assert!(matches!(
        ContainmentRequest::builder(&g).seed(vid(0)).build(),
        Err(IminError::ZeroBudget)
    ));
    assert!(matches!(
        ContainmentRequest::builder(&g).budget(1).build(),
        Err(IminError::EmptySeedSet)
    ));
    assert!(matches!(
        ContainmentRequest::builder(&g)
            .seed(vid(g.num_vertices() + 7))
            .budget(1)
            .build(),
        Err(IminError::SeedOutOfRange { .. })
    ));
    assert!(matches!(
        ContainmentRequest::builder(&g)
            .seeds([vid(3), vid(1), vid(3)])
            .budget(1)
            .build(),
        Err(IminError::DuplicateSeed { vertex: 3 })
    ));
    // θ = 0 builds fine (rank-only heuristics never sample) and surfaces
    // as ZeroSamples only from solvers that do.
    let zero_theta = ContainmentRequest::builder(&g)
        .seed(vid(0))
        .budget(1)
        .fresh(0, 1, 1)
        .build()
        .unwrap();
    assert!(AlgorithmKind::OutDegree
        .solver()
        .solve(&g, &zero_theta)
        .is_ok());
    assert!(matches!(
        AlgorithmKind::AdvancedGreedy
            .solver()
            .solve(&g, &zero_theta),
        Err(IminError::ZeroSamples)
    ));
    assert!(matches!(
        ContainmentRequest::builder(&g)
            .seed(vid(0))
            .budget(1)
            .forbid_mask(vec![false; 7])
            .build(),
        Err(IminError::Diffusion(_))
    ));
    let mut overlap = vec![false; g.num_vertices()];
    overlap[5] = true;
    assert!(matches!(
        ContainmentRequest::builder(&g)
            .seeds([vid(0), vid(5)])
            .budget(1)
            .forbid_mask(overlap)
            .build(),
        Err(IminError::ForbiddenSeedOverlap { vertex: 5 })
    ));
    assert!(matches!(
        ForbiddenSet::from_vertices(4, &[vid(9)]),
        Err(IminError::InvalidBlocker { .. })
    ));
}

#[test]
fn fresh_shims_are_byte_identical_to_the_request_api() {
    let g = wc_graph();
    let n = g.num_vertices();
    let source = vid(0);
    let mut forbidden = vec![false; n];
    forbidden[7] = true;
    let budget = 3;
    for threads in [1usize, 2, 8] {
        let config = AlgorithmConfig::fast_for_tests()
            .with_theta(300)
            .with_mcs_rounds(150)
            .with_threads(threads)
            .with_seed(0xFEED);
        let request = ContainmentRequest::builder(&g)
            .seed(source)
            .budget(budget)
            .forbid_mask(forbidden.clone())
            .fresh_from(&config)
            .build()
            .unwrap();
        let cases: Vec<(AlgorithmKind, BlockerSelection)> = vec![
            (
                AlgorithmKind::AdvancedGreedy,
                advanced_greedy(&g, source, &forbidden, budget, &config).unwrap(),
            ),
            (
                AlgorithmKind::GreedyReplace,
                greedy_replace(&g, source, &forbidden, budget, &config).unwrap(),
            ),
            (
                AlgorithmKind::Random,
                random_blockers(&g, source, &forbidden, budget, config.seed).unwrap(),
            ),
            (
                AlgorithmKind::OutDegree,
                out_degree_blockers(&g, source, &forbidden, budget).unwrap(),
            ),
            (
                AlgorithmKind::Degree,
                degree_blockers(&g, source, &forbidden, budget).unwrap(),
            ),
            (
                AlgorithmKind::OutNeighbors,
                out_neighbor_blockers(&g, source, &forbidden, budget, &config).unwrap(),
            ),
            (
                AlgorithmKind::PageRank,
                pagerank_blockers(&g, source, &forbidden, budget).unwrap(),
            ),
        ];
        for (kind, legacy) in cases {
            let solved = kind.solver().solve(&g, &request).unwrap();
            assert_same_selection(kind, threads, &legacy, &solved);
        }
    }
}

#[test]
fn baseline_and_exact_shims_are_byte_identical_to_the_request_api() {
    // Both are simulation-heavy, so they run on a smaller instance.
    let topology = generators::preferential_attachment(60, 2, false, 1.0, 13).unwrap();
    let g = ProbabilityModel::WeightedCascade.apply(&topology).unwrap();
    let source = vid(0);
    let forbidden = vec![false; g.num_vertices()];
    let budget = 2;
    for threads in [1usize, 2] {
        let config = AlgorithmConfig::fast_for_tests()
            .with_theta(100)
            .with_mcs_rounds(200)
            .with_threads(threads)
            .with_seed(77);
        let request = ContainmentRequest::builder(&g)
            .seed(source)
            .budget(budget)
            .forbid_mask(forbidden.clone())
            .fresh_from(&config)
            .build()
            .unwrap();
        let legacy_bg = baseline_greedy(&g, source, &forbidden, budget, &config).unwrap();
        let solved_bg = AlgorithmKind::BaselineGreedy
            .solver()
            .solve(&g, &request)
            .unwrap();
        assert_same_selection(
            AlgorithmKind::BaselineGreedy,
            threads,
            &legacy_bg,
            &solved_bg,
        );

        let legacy_exact = exact_blocker_search(
            &g,
            source,
            &forbidden,
            budget,
            &ExactSearchConfig {
                evaluator: SpreadEvaluator::MonteCarlo {
                    rounds: config.mcs_rounds,
                },
                threads: config.threads,
                seed: config.seed,
                ..Default::default()
            },
        )
        .unwrap();
        let solved_exact = AlgorithmKind::Exact.solver().solve(&g, &request).unwrap();
        assert_same_selection(AlgorithmKind::Exact, threads, &legacy_exact, &solved_exact);
    }
}

#[test]
fn pooled_shims_are_byte_identical_to_the_request_api() {
    let g = wc_graph();
    let n = g.num_vertices();
    let pool = SamplePool::build(&g, 400, 23).unwrap();
    let seeds = [vid(0), vid(4)];
    let mut forbidden = vec![false; n];
    forbidden[9] = true;
    let budget = 4;
    for threads in [1usize, 2, 8] {
        let request = ContainmentRequest::builder(&g)
            .seeds(seeds)
            .budget(budget)
            .forbid_mask(forbidden.clone())
            .pooled_with_threads(&pool, threads)
            .build()
            .unwrap();
        let legacy_ag =
            advanced_greedy_with_pool(&pool, &seeds, &forbidden, budget, threads).unwrap();
        let solved_ag = AlgorithmKind::AdvancedGreedy
            .solver()
            .solve(&g, &request)
            .unwrap();
        assert_same_selection(
            AlgorithmKind::AdvancedGreedy,
            threads,
            &legacy_ag,
            &solved_ag,
        );

        let legacy_gr =
            greedy_replace_with_pool(&pool, &g, &seeds, &forbidden, budget, threads).unwrap();
        let solved_gr = AlgorithmKind::GreedyReplace
            .solver()
            .solve(&g, &request)
            .unwrap();
        assert_same_selection(
            AlgorithmKind::GreedyReplace,
            threads,
            &legacy_gr,
            &solved_gr,
        );
    }
}

/// A ≥10k-vertex planted graph with only deterministic (p = 1) edges: three
/// seeds feed 30 gateways whose fan-outs all differ, so every greedy round
/// has a unique argmax, the estimator is exact on both backends, and
/// `Fresh` and `Pooled` answers must coincide *exactly* for the same θ and
/// seed — the multi-seed acceptance bar of the unified API.
fn planted_gateway_graph() -> (DiGraph, Vec<VertexId>, Vec<VertexId>) {
    const SEEDS: usize = 3;
    const GATEWAYS: usize = 30;
    let mut edges: Vec<(VertexId, VertexId, f64)> = Vec::new();
    let gateway = |i: usize| vid(SEEDS + i);
    let mut next = SEEDS + GATEWAYS;
    for s in 0..SEEDS {
        for i in 0..GATEWAYS {
            edges.push((vid(s), gateway(i), 1.0));
        }
    }
    for i in 0..GATEWAYS {
        let leaves = 100 + 20 * i; // all fan-outs distinct
        for _ in 0..leaves {
            edges.push((gateway(i), vid(next), 1.0));
            next += 1;
        }
    }
    let n = next;
    assert!(n >= 10_000, "planted graph must have at least 10k vertices");
    let graph = DiGraph::from_edges(n, edges).unwrap();
    let seeds = (0..SEEDS).map(vid).collect();
    let gateways = (0..GATEWAYS).map(gateway).collect();
    (graph, seeds, gateways)
}

#[test]
fn multi_seed_selections_are_identical_on_fresh_and_pooled_backends() {
    let (graph, seeds, gateways) = planted_gateway_graph();
    let theta = 4usize;
    let seed = 2023u64;
    let budget = 5usize;
    let pool = SamplePool::build_with_threads(&graph, theta, seed, 4).unwrap();
    for kind in [AlgorithmKind::AdvancedGreedy, AlgorithmKind::GreedyReplace] {
        let mut reference: Option<BlockerSelection> = None;
        for threads in [1usize, 8] {
            let fresh = ContainmentRequest::builder(&graph)
                .seeds(seeds.iter().copied())
                .budget(budget)
                .fresh(theta, seed, threads)
                .build()
                .unwrap();
            let fresh_sel = kind.solver().solve(&graph, &fresh).unwrap();
            let pooled = ContainmentRequest::builder(&graph)
                .seeds(seeds.iter().copied())
                .budget(budget)
                .pooled_with_threads(&pool, threads)
                .build()
                .unwrap();
            let pooled_sel = kind.solver().solve(&graph, &pooled).unwrap();
            assert_eq!(
                fresh_sel.blockers, pooled_sel.blockers,
                "{kind:?} (threads={threads}): Fresh and Pooled selections diverged"
            );
            assert_eq!(
                fresh_sel.estimated_spread, pooled_sel.estimated_spread,
                "{kind:?} (threads={threads}): spread estimates diverged"
            );
            // Every pick is one of the planted gateways (never a seed or a
            // leaf), in strictly decreasing fan-out order for AG.
            for b in &fresh_sel.blockers {
                assert!(gateways.contains(b), "{kind:?} picked non-gateway {b}");
            }
            if kind == AlgorithmKind::AdvancedGreedy {
                let expected: Vec<VertexId> = gateways.iter().rev().take(budget).copied().collect();
                assert_eq!(fresh_sel.blockers, expected, "largest fan-outs first");
            }
            // Thread count never changes the answer on either backend.
            match &reference {
                None => reference = Some(fresh_sel),
                Some(prev) => {
                    assert_eq!(
                        prev.blockers, fresh_sel.blockers,
                        "{kind:?}: thread variance"
                    )
                }
            }
        }
    }
}

#[test]
fn registry_round_trips_and_rejects_unknown_names() {
    for &kind in AlgorithmKind::all() {
        assert_eq!(kind.name().parse::<AlgorithmKind>().unwrap(), kind);
        assert_eq!(kind.label().parse::<AlgorithmKind>().unwrap(), kind);
        assert_eq!(kind.solver().kind(), kind);
    }
    assert!(matches!(
        "warp-drive".parse::<AlgorithmKind>(),
        Err(IminError::UnknownAlgorithm { .. })
    ));
}

/// Remaining (blocked) spread of a fixed blocker set, measured on the
/// forward sample pool — the ground truth both backends are judged by.
fn forward_blocked_spread(pool: &SamplePool, seeds: &[VertexId], blockers: &[VertexId]) -> f64 {
    let mut blocked = vec![false; pool.num_vertices()];
    for b in blockers {
        blocked[b.index()] = true;
    }
    imin_core::pool::with_pool_workspace(|ws| {
        imin_core::pool::pooled_decrease_in(pool, seeds, &blocked, 4, ws)
    })
    .unwrap()
    .average_reached
}

#[test]
fn sketch_greedy_matches_forward_greedy_on_the_planted_gateway_graph() {
    // Every edge is deterministic, so a reverse sketch from root r is the
    // exact set of vertices that reach r and the only estimation noise is
    // root sampling. Sketch-greedy must recover (near-)optimal gateways
    // and its blocked spread — measured on the *forward* pool — must sit
    // within 5% of AdvancedGreedy's.
    let (graph, seeds, gateways) = planted_gateway_graph();
    let budget = 5usize;
    let fwd_pool = SamplePool::build_with_threads(&graph, 4, 2023, 4).unwrap();
    let spool = SketchPool::build_with_threads(&graph, 20_000, 2023, 4).unwrap();

    let ag = {
        let request = ContainmentRequest::builder(&graph)
            .seeds(seeds.iter().copied())
            .budget(budget)
            .pooled_with_threads(&fwd_pool, 4)
            .build()
            .unwrap();
        AlgorithmKind::AdvancedGreedy
            .solver()
            .solve(&graph, &request)
            .unwrap()
    };

    let mut reference: Option<BlockerSelection> = None;
    for threads in [1usize, 2, 8] {
        let request = ContainmentRequest::builder(&graph)
            .seeds(seeds.iter().copied())
            .budget(budget)
            .sketch_pooled(&spool, threads)
            .build()
            .unwrap();
        let sel = AlgorithmKind::RisGreedy
            .solver()
            .solve(&graph, &request)
            .unwrap();
        for b in &sel.blockers {
            assert!(gateways.contains(b), "sketch-greedy picked non-gateway {b}");
        }
        match &reference {
            None => reference = Some(sel),
            Some(prev) => {
                assert_eq!(
                    prev.blockers, sel.blockers,
                    "sketch selection varies with thread count ({threads})"
                );
                assert_eq!(
                    prev.estimated_spread, sel.estimated_spread,
                    "sketch spread estimate varies with thread count ({threads})"
                );
            }
        }
    }
    let sketch = reference.unwrap();

    let ag_spread = forward_blocked_spread(&fwd_pool, &seeds, &ag.blockers);
    let sketch_spread = forward_blocked_spread(&fwd_pool, &seeds, &sketch.blockers);
    assert!(
        sketch_spread <= ag_spread * 1.05,
        "sketch blocked spread {sketch_spread:.1} not within 5% of AG {ag_spread:.1}"
    );
}

#[test]
fn sketch_greedy_blocked_spread_tracks_forward_greedy_on_weighted_cascade() {
    // A probabilistic mid-size instance: both the forward pool and the
    // sketch pool carry sampling noise, so we compare blocked-spread
    // quality (on the shared forward pool) rather than exact selections.
    let topology = generators::preferential_attachment(2_000, 3, true, 1.0, 97).unwrap();
    let graph = ProbabilityModel::WeightedCascade.apply(&topology).unwrap();
    let seeds = [vid(0), vid(1), vid(2)];
    let budget = 8usize;
    let fwd_pool = SamplePool::build_with_threads(&graph, 2_000, 7, 4).unwrap();

    let forward_best = [AlgorithmKind::AdvancedGreedy, AlgorithmKind::GreedyReplace]
        .into_iter()
        .map(|kind| {
            let request = ContainmentRequest::builder(&graph)
                .seeds(seeds)
                .budget(budget)
                .pooled_with_threads(&fwd_pool, 4)
                .build()
                .unwrap();
            let sel = kind.solver().solve(&graph, &request).unwrap();
            forward_blocked_spread(&fwd_pool, &seeds, &sel.blockers)
        })
        .fold(f64::INFINITY, f64::min);

    // Fresh sketch backend (pool built inside the solver) and all thread
    // counts must agree bit-for-bit with the pooled sketch backend.
    let spool = SketchPool::build_with_threads(&graph, 30_000, 7, 4).unwrap();
    let mut reference: Option<BlockerSelection> = None;
    for threads in [1usize, 2, 8] {
        let pooled = ContainmentRequest::builder(&graph)
            .seeds(seeds)
            .budget(budget)
            .sketch_pooled(&spool, threads)
            .build()
            .unwrap();
        let sel = AlgorithmKind::RisGreedy
            .solver()
            .solve(&graph, &pooled)
            .unwrap();
        let fresh = ContainmentRequest::builder(&graph)
            .seeds(seeds)
            .budget(budget)
            .sketch(30_000, 7, threads)
            .build()
            .unwrap();
        let fresh_sel = AlgorithmKind::RisGreedy
            .solver()
            .solve(&graph, &fresh)
            .unwrap();
        assert_eq!(
            sel.blockers, fresh_sel.blockers,
            "threads={threads}: fresh and pooled sketch selections diverged"
        );
        match &reference {
            None => reference = Some(sel),
            Some(prev) => assert_eq!(
                prev.blockers, sel.blockers,
                "threads={threads}: sketch selection varies with thread count"
            ),
        }
    }
    let sketch = reference.unwrap();
    let sketch_spread = forward_blocked_spread(&fwd_pool, &seeds, &sketch.blockers);
    assert!(
        sketch_spread <= forward_best * 1.05,
        "sketch blocked spread {sketch_spread:.1} not within 5% of best forward {forward_best:.1}"
    );
}

#[test]
fn simulation_algorithms_reject_the_pooled_backend() {
    let g = wc_graph();
    let pool = SamplePool::build(&g, 16, 1).unwrap();
    let request = ContainmentRequest::builder(&g)
        .seed(vid(0))
        .budget(2)
        .pooled(&pool)
        .build()
        .unwrap();
    for kind in [AlgorithmKind::BaselineGreedy, AlgorithmKind::Exact] {
        assert!(matches!(
            kind.solver().solve(&g, &request),
            Err(IminError::BackendUnsupported { .. })
        ));
    }
}
