//! End-to-end pipelines across all crates: dataset stand-in → probability
//! model → seed merge → algorithm → evaluation.

use imin_core::{Algorithm, AlgorithmConfig, ImninProblem};
use imin_datasets::{Dataset, DatasetScale};
use imin_diffusion::ProbabilityModel;
use imin_graph::{GraphStats, VertexId};
use imin_integration_tests::assert_close;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn draw_seeds(graph: &imin_graph::DiGraph, count: usize, seed: u64) -> Vec<VertexId> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seeds = Vec::new();
    while seeds.len() < count {
        let v = VertexId::new(rng.gen_range(0..graph.num_vertices()));
        if graph.out_degree(v) > 0 && !seeds.contains(&v) {
            seeds.push(v);
        }
    }
    seeds
}

#[test]
fn full_pipeline_on_emailcore_standin_tr_model() {
    let (topology, _) = Dataset::EmailCore
        .load_or_generate(DatasetScale::Tiny)
        .unwrap();
    let graph = ProbabilityModel::Trivalency { seed: 7 }
        .apply(&topology)
        .unwrap();
    let stats = GraphStats::compute(&graph);
    assert!(stats.num_edges > 0);
    assert!(stats.max_probability <= 0.1 + 1e-12);

    let seeds = draw_seeds(&graph, 5, 3);
    let problem = ImninProblem::new(&graph, seeds.clone()).unwrap();
    let config = AlgorithmConfig::fast_for_tests()
        .with_theta(500)
        .with_mcs_rounds(500);

    let unblocked = problem.evaluate_spread(&[], 2_000, 1).unwrap();
    assert!(unblocked >= seeds.len() as f64 - 1e-9);

    let gr = problem
        .solve(Algorithm::GreedyReplace, 10, &config)
        .unwrap();
    assert!(gr.len() <= 10);
    let blocked = problem.evaluate_spread(&gr.blockers, 2_000, 1).unwrap();
    assert!(
        blocked <= unblocked + 0.2,
        "blocking must not increase spread: {blocked} vs {unblocked}"
    );
    // The algorithm's own estimate agrees with independent evaluation.
    if let Some(estimate) = gr.estimated_spread {
        assert_close(
            estimate,
            blocked,
            1.0 + 0.05 * unblocked,
            "GR estimate vs evaluation",
        );
    }
}

#[test]
fn wc_model_pipeline_and_algorithm_ordering() {
    // On a heavy-tailed graph with enough budget, the expected quality
    // ordering of the paper must emerge: GR ≤ AG ≤ OD (up to noise), and all
    // of them are far better than doing nothing.
    let (topology, _) = Dataset::WikiVote
        .load_or_generate(DatasetScale::Tiny)
        .unwrap();
    let graph = ProbabilityModel::WeightedCascade.apply(&topology).unwrap();
    let seeds = draw_seeds(&graph, 3, 11);
    let problem = ImninProblem::new(&graph, seeds).unwrap();
    let config = AlgorithmConfig::fast_for_tests()
        .with_theta(800)
        .with_mcs_rounds(800);
    let budget = 15;

    let eval = |alg: Algorithm| {
        let sel = problem.solve(alg, budget, &config).unwrap();
        problem.evaluate_spread(&sel.blockers, 4_000, 9).unwrap()
    };
    let nothing = problem.evaluate_spread(&[], 4_000, 9).unwrap();
    let od = eval(Algorithm::OutDegree);
    let ag = eval(Algorithm::AdvancedGreedy);
    let gr = eval(Algorithm::GreedyReplace);

    assert!(ag <= nothing && gr <= nothing && od <= nothing + 1e-9);
    // Greedy approaches beat the degree heuristic (allowing sampling noise).
    assert!(
        ag <= od + 0.5,
        "AG {ag} should not be much worse than OD {od}"
    );
    assert!(
        gr <= ag + 0.5,
        "GR {gr} should not be much worse than AG {ag}"
    );
}

#[test]
fn multi_seed_merge_preserves_spread_on_real_standin() {
    let (topology, _) = Dataset::Facebook
        .load_or_generate(DatasetScale::Tiny)
        .unwrap();
    let graph = ProbabilityModel::Trivalency { seed: 5 }
        .apply(&topology)
        .unwrap();
    let seeds = draw_seeds(&graph, 8, 21);
    let problem = ImninProblem::new(&graph, seeds.clone()).unwrap();

    // Spread via the original formulation.
    let direct = imin_diffusion::montecarlo::MonteCarloEstimator::new(20_000)
        .with_seed(2)
        .expected_spread(&graph, &seeds)
        .unwrap()
        .mean;
    // Spread via the merged single-seed formulation plus the offset.
    let merged = problem.merged();
    let merged_spread = imin_diffusion::montecarlo::MonteCarloEstimator::new(20_000)
        .with_seed(3)
        .expected_spread(&merged.graph, &[merged.super_seed])
        .unwrap()
        .mean;
    assert_close(
        merged.to_original_spread(merged_spread),
        direct,
        0.05 * direct + 0.2,
        "seed-merge spread equivalence",
    );
}

#[test]
fn blockers_never_include_seeds_or_out_of_range_vertices() {
    let (topology, _) = Dataset::Dblp.load_or_generate(DatasetScale::Tiny).unwrap();
    let graph = ProbabilityModel::WeightedCascade.apply(&topology).unwrap();
    let seeds = draw_seeds(&graph, 4, 77);
    let problem = ImninProblem::new(&graph, seeds.clone()).unwrap();
    let config = AlgorithmConfig::fast_for_tests()
        .with_theta(300)
        .with_mcs_rounds(300);
    for &alg in &[
        Algorithm::Random,
        Algorithm::OutDegree,
        Algorithm::Degree,
        Algorithm::PageRank,
        Algorithm::OutNeighbors,
        Algorithm::AdvancedGreedy,
        Algorithm::GreedyReplace,
    ] {
        let sel = problem.solve(alg, 12, &config).unwrap();
        for &b in &sel.blockers {
            assert!(b.index() < graph.num_vertices(), "{alg:?}");
            assert!(!seeds.contains(&b), "{alg:?} blocked a seed");
        }
    }
}

#[test]
fn edge_list_roundtrip_preserves_algorithm_behaviour() {
    // Export a stand-in to the SNAP format, re-load it, and confirm the
    // problem produces the same spread (cross-crate I/O consistency).
    let (topology, _) = Dataset::EmailCore
        .load_or_generate(DatasetScale::Tiny)
        .unwrap();
    let graph = ProbabilityModel::Trivalency { seed: 1 }
        .apply(&topology)
        .unwrap();
    let mut buffer = Vec::new();
    imin_graph::edgelist::write_edge_list(&graph, &mut buffer).unwrap();
    let text = String::from_utf8(buffer).unwrap();
    let reloaded = imin_graph::edgelist::parse_edge_list(
        &text,
        &imin_graph::edgelist::EdgeListOptions {
            compact_ids: false,
            ..Default::default()
        },
    )
    .unwrap()
    .graph;
    assert_eq!(reloaded.num_edges(), graph.num_edges());

    let seeds = draw_seeds(&graph, 3, 5);
    let a = ImninProblem::new(&graph, seeds.clone())
        .unwrap()
        .evaluate_spread(&[], 5_000, 4)
        .unwrap();
    let b = ImninProblem::new(&reloaded, seeds)
        .unwrap()
        .evaluate_spread(&[], 5_000, 4)
        .unwrap();
    assert_close(a, b, 1e-9, "identical graphs give identical evaluation");
}
