//! Parity and quality relationships between the algorithms, mirroring the
//! comparisons the paper draws:
//!
//! * AdvancedGreedy matches BaselineGreedy's effectiveness (§V-C) while
//!   using dominator-tree estimation instead of per-candidate Monte-Carlo.
//! * GreedyReplace is never worse than blocking out-neighbours only (§V-D).
//! * GreedyReplace matches the exhaustive Exact search on small instances
//!   (Tables V and VI report ≥ 99.9% ratios).

use imin_core::{Algorithm, AlgorithmConfig, ImninProblem};
use imin_datasets::extract::extract_neighborhood;
use imin_datasets::{Dataset, DatasetScale};
use imin_diffusion::ProbabilityModel;
use imin_graph::{generators, VertexId};

fn cfg() -> AlgorithmConfig {
    AlgorithmConfig::fast_for_tests()
        .with_theta(1_500)
        .with_mcs_rounds(1_500)
}

#[test]
fn advanced_greedy_matches_baseline_greedy_quality() {
    // A 60-vertex scale-free graph with WC probabilities: small enough for
    // the baseline, random enough to be interesting.
    let topology = generators::preferential_attachment(60, 2, false, 1.0, 13).unwrap();
    let graph = ProbabilityModel::WeightedCascade.apply(&topology).unwrap();
    let problem = ImninProblem::new(&graph, vec![VertexId::new(0)]).unwrap();
    for budget in [1usize, 3] {
        let bg = problem
            .solve(Algorithm::BaselineGreedy, budget, &cfg())
            .unwrap();
        let ag = problem
            .solve(Algorithm::AdvancedGreedy, budget, &cfg())
            .unwrap();
        let bg_spread = problem.evaluate_spread(&bg.blockers, 20_000, 1).unwrap();
        let ag_spread = problem.evaluate_spread(&ag.blockers, 20_000, 1).unwrap();
        assert!(
            (ag_spread - bg_spread).abs() <= 0.15 * bg_spread.max(1.0),
            "budget {budget}: AG spread {ag_spread} vs BG spread {bg_spread}"
        );
    }
}

#[test]
fn greedy_replace_is_at_least_as_good_as_out_neighbors() {
    let topology = generators::preferential_attachment(300, 3, false, 1.0, 29).unwrap();
    let graph = ProbabilityModel::Trivalency { seed: 4 }
        .apply(&topology)
        .unwrap();
    let problem = ImninProblem::new(&graph, vec![VertexId::new(2)]).unwrap();
    for budget in [2usize, 5, 10] {
        let on = problem
            .solve(Algorithm::OutNeighbors, budget, &cfg())
            .unwrap();
        let gr = problem
            .solve(Algorithm::GreedyReplace, budget, &cfg())
            .unwrap();
        let on_spread = problem.evaluate_spread(&on.blockers, 20_000, 2).unwrap();
        let gr_spread = problem.evaluate_spread(&gr.blockers, 20_000, 2).unwrap();
        assert!(
            gr_spread <= on_spread + 0.1,
            "budget {budget}: GR {gr_spread} must be ≤ OutNeighbors {on_spread}"
        );
    }
}

#[test]
fn greedy_replace_matches_exact_on_an_extract() {
    // The Tables V/VI setting: a small extract, tiny budgets, exact search
    // as the oracle. GR's spread must stay within a few percent.
    let (topology, _) = Dataset::EmailCore
        .load_or_generate(DatasetScale::Tiny)
        .unwrap();
    let graph = ProbabilityModel::WeightedCascade.apply(&topology).unwrap();
    let extract = extract_neighborhood(&graph, VertexId::new(0), 30).unwrap();
    let sub = &extract.graph;
    // Use a seed with out-edges inside the extract.
    let seed = sub
        .vertices()
        .find(|&v| sub.out_degree(v) > 0)
        .expect("extract has at least one edge");
    let problem = ImninProblem::new(sub, vec![seed]).unwrap();
    for budget in [1usize, 2] {
        let exact = problem.solve(Algorithm::Exact, budget, &cfg()).unwrap();
        let gr = problem
            .solve(Algorithm::GreedyReplace, budget, &cfg())
            .unwrap();
        let exact_spread = problem.evaluate_spread(&exact.blockers, 30_000, 3).unwrap();
        let gr_spread = problem.evaluate_spread(&gr.blockers, 30_000, 3).unwrap();
        assert!(
            gr_spread <= exact_spread * 1.05 + 0.1,
            "budget {budget}: GR {gr_spread} vs Exact {exact_spread}"
        );
        // The exact optimum can never be worse than GR.
        assert!(exact_spread <= gr_spread + 0.1);
    }
}

#[test]
fn spread_decreases_monotonically_with_budget_for_greedy_algorithms() {
    let topology = generators::preferential_attachment(400, 3, false, 1.0, 31).unwrap();
    let graph = ProbabilityModel::WeightedCascade.apply(&topology).unwrap();
    let problem = ImninProblem::new(&graph, vec![VertexId::new(0), VertexId::new(5)]).unwrap();
    for alg in [Algorithm::AdvancedGreedy, Algorithm::GreedyReplace] {
        let mut previous = f64::INFINITY;
        for budget in [1usize, 4, 8, 16] {
            let sel = problem.solve(alg, budget, &cfg()).unwrap();
            let spread = problem.evaluate_spread(&sel.blockers, 10_000, 4).unwrap();
            assert!(
                spread <= previous + 0.3,
                "{alg:?}: spread {spread} at budget {budget} exceeds previous {previous}"
            );
            previous = spread;
        }
    }
}

#[test]
fn large_budget_reaches_the_seed_only_plateau() {
    // With a budget at least the seed's out-degree, GreedyReplace blocks the
    // entire out-neighbourhood and the spread collapses to |S| — the plateau
    // visible in Table VII (spread 10 for the 10-seed runs).
    let topology = generators::preferential_attachment(200, 2, false, 1.0, 17).unwrap();
    let graph = ProbabilityModel::Trivalency { seed: 9 }
        .apply(&topology)
        .unwrap();
    let seed = VertexId::new(0);
    let out_degree = graph.out_degree(seed);
    let problem = ImninProblem::new(&graph, vec![seed]).unwrap();
    let sel = problem
        .solve(Algorithm::GreedyReplace, out_degree.max(1) + 2, &cfg())
        .unwrap();
    let spread = problem.evaluate_spread(&sel.blockers, 20_000, 5).unwrap();
    assert!(
        (spread - 1.0).abs() < 0.05,
        "blocking the whole out-neighbourhood must leave only the seed, got {spread}"
    );
}
