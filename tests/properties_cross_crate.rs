//! Cross-crate property-based tests: the dominator-tree estimator agrees
//! with Monte-Carlo simulation, blocking is monotone, and algorithms always
//! produce valid selections on random problem instances.

use imin_core::decrease::{decrease_es_computation, DecreaseConfig};
use imin_core::{Algorithm, AlgorithmConfig, ImninProblem};
use imin_diffusion::montecarlo::MonteCarloEstimator;
use imin_diffusion::ProbabilityModel;
use imin_graph::{generators, VertexId};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Theorem 4/6 end to end: for random graphs and random candidates, the
    /// dominator-tree estimate of the spread decrease matches an
    /// independent Monte-Carlo estimate.
    #[test]
    fn dominator_estimate_matches_monte_carlo(seed in 0u64..1000, n in 10usize..40) {
        let topology = generators::erdos_renyi(n, 2.5 / n as f64, 1.0, seed).unwrap();
        let graph = ProbabilityModel::Uniform { low: 0.2, high: 0.9, seed }
            .apply(&topology)
            .unwrap();
        let source = VertexId::new(0);
        let blocked = vec![false; n];
        let est = decrease_es_computation(
            &graph,
            source,
            &blocked,
            &DecreaseConfig { theta: 20_000, threads: 2, seed },
        )
        .unwrap();
        let mcs = MonteCarloEstimator::new(20_000).with_seed(seed ^ 0xF00D);
        // Check the three highest-impact candidates (the interesting ones).
        let mut order: Vec<usize> = (1..n).collect();
        order.sort_by(|&a, &b| est.delta[b].partial_cmp(&est.delta[a]).unwrap());
        for &v in order.iter().take(3) {
            let expected = mcs
                .spread_decrease(&graph, &[source], &blocked, VertexId::new(v))
                .unwrap();
            prop_assert!(
                (est.delta[v] - expected).abs() < 0.15 + 0.05 * expected.abs(),
                "vertex {}: dominator {} vs MCS {}",
                v,
                est.delta[v],
                expected
            );
        }
    }

    /// Blocking more vertices never increases the expected spread
    /// (monotonicity, Theorem 2).
    #[test]
    fn blocking_is_monotone_in_expectation(seed in 0u64..1000, n in 8usize..30) {
        let topology = generators::erdos_renyi(n, 3.0 / n as f64, 1.0, seed).unwrap();
        let graph = ProbabilityModel::Uniform { low: 0.1, high: 0.8, seed }
            .apply(&topology)
            .unwrap();
        let seeds = vec![VertexId::new(0)];
        let mcs = MonteCarloEstimator::new(8_000).with_seed(seed);
        let mut mask = vec![false; n];
        let mut previous = mcs.expected_spread_blocked(&graph, &seeds, Some(&mask)).unwrap().mean;
        // Block vertices 1, 2, 3 in turn; spread must not increase by more
        // than the Monte-Carlo noise.
        for v in 1..4.min(n) {
            mask[v] = true;
            let next = mcs.expected_spread_blocked(&graph, &seeds, Some(&mask)).unwrap().mean;
            prop_assert!(next <= previous + 0.15, "spread rose from {} to {}", previous, next);
            previous = next;
        }
    }

    /// Every algorithm returns at most `b` valid blockers on random problem
    /// instances, and their evaluated spread never exceeds doing nothing.
    #[test]
    fn algorithms_are_safe_on_random_instances(seed in 0u64..500, n in 20usize..80) {
        let topology = generators::preferential_attachment(n, 2, false, 1.0, seed).unwrap();
        let graph = ProbabilityModel::WeightedCascade.apply(&topology).unwrap();
        let seeds = vec![VertexId::new((seed as usize) % n)];
        let problem = ImninProblem::new(&graph, seeds.clone()).unwrap();
        let config = AlgorithmConfig::fast_for_tests().with_theta(200).with_mcs_rounds(200);
        let budget = 1 + (seed as usize % 5);
        let nothing = problem.evaluate_spread(&[], 3_000, seed).unwrap();
        for alg in [Algorithm::OutDegree, Algorithm::AdvancedGreedy, Algorithm::GreedyReplace] {
            let sel = problem.solve(alg, budget, &config).unwrap();
            prop_assert!(sel.len() <= budget);
            for &b in &sel.blockers {
                prop_assert!(problem.is_valid_blocker(b));
            }
            let spread = problem.evaluate_spread(&sel.blockers, 3_000, seed).unwrap();
            prop_assert!(spread <= nothing + 0.3, "{:?}: {} vs {}", alg, spread, nothing);
        }
    }
}
