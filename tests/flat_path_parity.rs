//! Exact-parity tests for the arena-backed sampling→dominator hot path.
//!
//! The flattening of `CompactSample` (CSR arena) and the reusable
//! `DomTreeWorkspace` are pure representation changes: for a fixed seed they
//! must produce **bit-identical** estimates — and therefore byte-identical
//! blocker selections — to a reference implementation built from the
//! pre-flattening pieces (nested `Vec<Vec<u32>>` adjacency fed to
//! `dominator_tree_from_adjacency`) and to the brute-force
//! `naive_immediate_dominators` oracle.

use imin_core::advanced_greedy::{advanced_greedy, advanced_greedy_with_pool};
use imin_core::decrease::{decrease_es_computation, DecreaseConfig, DecreaseEstimate};
use imin_core::greedy_replace::greedy_replace_with_pool;
use imin_core::sampler::{CompactSample, IcLiveEdgeSampler, SpreadSampler};
use imin_core::{AlgorithmConfig, SamplePool};
use imin_diffusion::live_edge::sample_live_edges_indexed;
use imin_diffusion::ProbabilityModel;
use imin_domtree::dominator_tree_from_adjacency;
use imin_domtree::naive::naive_immediate_dominators;
use imin_graph::{generators, DiGraph, VertexId};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn vid(i: usize) -> VertexId {
    VertexId::new(i)
}

/// Rebuilds the nested adjacency the sampler produced before the CSR arena.
fn nested_adjacency(sample: &CompactSample) -> Vec<Vec<u32>> {
    (0..sample.num_reached() as u32)
        .map(|l| sample.neighbors(l).to_vec())
        .collect()
}

/// Reference `DecreaseESComputation`: identical sampling stream, but the
/// dominator trees come from the nested-adjacency compatibility shim. Any
/// divergence from `decrease_es_computation` would mean the arena changed
/// the numbers, not just the layout.
fn reference_decrease_nested(
    graph: &DiGraph,
    source: VertexId,
    blocked: &[bool],
    config: &DecreaseConfig,
) -> DecreaseEstimate {
    assert_eq!(config.threads, 1, "the reference is sequential");
    let n = graph.num_vertices();
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut sample = CompactSample::new(n);
    let mut delta_sum = vec![0.0f64; n];
    let mut reached_sum = 0.0f64;
    for _ in 0..config.theta {
        IcLiveEdgeSampler.sample(graph, source, blocked, &mut rng, &mut sample);
        let reached = sample.num_reached();
        reached_sum += reached as f64;
        if reached <= 1 {
            continue;
        }
        let adjacency = nested_adjacency(&sample);
        let dt = dominator_tree_from_adjacency(&adjacency, vid(0));
        let sizes = dt.subtree_sizes();
        let globals = sample.vertices();
        for local in 1..reached {
            delta_sum[globals[local] as usize] += sizes[local] as f64;
        }
    }
    let inv = 1.0 / config.theta as f64;
    DecreaseEstimate {
        delta: delta_sum.iter().map(|d| d * inv).collect(),
        average_reached: reached_sum * inv,
        samples: config.theta,
    }
}

/// Reference estimator whose per-sample dominators come from the cubic
/// brute-force oracle (Definition 5 verbatim).
fn reference_decrease_naive(
    graph: &DiGraph,
    source: VertexId,
    blocked: &[bool],
    config: &DecreaseConfig,
) -> DecreaseEstimate {
    assert_eq!(config.threads, 1, "the reference is sequential");
    let n = graph.num_vertices();
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut sample = CompactSample::new(n);
    let mut delta_sum = vec![0.0f64; n];
    let mut reached_sum = 0.0f64;
    for _ in 0..config.theta {
        IcLiveEdgeSampler.sample(graph, source, blocked, &mut rng, &mut sample);
        let reached = sample.num_reached();
        reached_sum += reached as f64;
        if reached <= 1 {
            continue;
        }
        // Materialise the sample as a DiGraph for the oracle.
        let edges: Vec<(VertexId, VertexId, f64)> = (0..reached as u32)
            .flat_map(|l| {
                sample
                    .neighbors(l)
                    .iter()
                    .map(move |&t| (VertexId::from_raw(l), VertexId::from_raw(t), 1.0))
                    .collect::<Vec<_>>()
            })
            .collect();
        let sample_graph = DiGraph::from_edges(reached, edges).unwrap();
        let idom = naive_immediate_dominators(&sample_graph, vid(0));
        // Subtree sizes straight from the idom chains.
        let mut sizes = vec![0u64; reached];
        for v in 0..reached {
            if v != 0 && idom[v].is_none() {
                continue; // unreachable inside the sample cannot happen, but stay total
            }
            let mut cur = v;
            loop {
                sizes[cur] += 1;
                match idom[cur] {
                    Some(d) => cur = d.index(),
                    None => break,
                }
            }
        }
        let globals = sample.vertices();
        for local in 1..reached {
            delta_sum[globals[local] as usize] += sizes[local] as f64;
        }
    }
    let inv = 1.0 / config.theta as f64;
    DecreaseEstimate {
        delta: delta_sum.iter().map(|d| d * inv).collect(),
        average_reached: reached_sum * inv,
        samples: config.theta,
    }
}

/// Replicates the greedy loop of `advanced_greedy` on top of an arbitrary
/// estimator, so selections can be compared blocker by blocker.
fn reference_greedy<F>(
    graph: &DiGraph,
    source: VertexId,
    budget: usize,
    config: &AlgorithmConfig,
    estimator: F,
) -> Vec<VertexId>
where
    F: Fn(&DiGraph, VertexId, &[bool], &DecreaseConfig) -> DecreaseEstimate,
{
    let n = graph.num_vertices();
    let mut blocked = vec![false; n];
    let mut blockers = Vec::new();
    for round in 0..budget {
        let cfg = DecreaseConfig {
            theta: config.theta,
            threads: 1,
            seed: config.seed.wrapping_add(round as u64),
        };
        let estimate = estimator(graph, source, &blocked, &cfg);
        let chosen = estimate.best_candidate(|v| v != source && !blocked[v.index()]);
        let Some(chosen) = chosen else { break };
        blocked[chosen.index()] = true;
        blockers.push(chosen);
    }
    blockers
}

fn parity_config(theta: usize) -> AlgorithmConfig {
    AlgorithmConfig::fast_for_tests()
        .with_theta(theta)
        .with_threads(1)
}

fn toy_hub() -> DiGraph {
    DiGraph::from_edges(
        6,
        vec![
            (vid(0), vid(1), 1.0),
            (vid(1), vid(2), 1.0),
            (vid(1), vid(3), 1.0),
            (vid(1), vid(4), 0.6),
            (vid(0), vid(5), 0.7),
            (vid(5), vid(4), 0.5),
        ],
    )
    .unwrap()
}

#[test]
fn flat_estimates_are_bit_identical_to_nested_reference() {
    let wc = ProbabilityModel::WeightedCascade;
    let graphs = [
        toy_hub(),
        wc.apply(&generators::preferential_attachment(200, 3, false, 1.0, 7).unwrap())
            .unwrap(),
        wc.apply(&generators::erdos_renyi(120, 0.04, 1.0, 21).unwrap())
            .unwrap(),
    ];
    for (gi, graph) in graphs.iter().enumerate() {
        let n = graph.num_vertices();
        let blocked = vec![false; n];
        let cfg = DecreaseConfig {
            theta: 400,
            threads: 1,
            seed: 0xFEED + gi as u64,
        };
        let flat = decrease_es_computation(graph, vid(0), &blocked, &cfg).unwrap();
        let reference = reference_decrease_nested(graph, vid(0), &blocked, &cfg);
        // Bitwise equality: identical samples, identical trees, identical
        // summation order.
        assert_eq!(flat.delta, reference.delta, "graph {gi}: delta diverged");
        assert_eq!(
            flat.average_reached, reference.average_reached,
            "graph {gi}: spread estimate diverged"
        );
    }
}

#[test]
fn advanced_greedy_selection_is_identical_to_nested_reference() {
    let wc = ProbabilityModel::WeightedCascade;
    let graphs = [
        toy_hub(),
        wc.apply(&generators::preferential_attachment(150, 2, false, 1.0, 11).unwrap())
            .unwrap(),
    ];
    for (gi, graph) in graphs.iter().enumerate() {
        let config = parity_config(300);
        let budget = 4;
        let flat = advanced_greedy(
            graph,
            vid(0),
            &vec![false; graph.num_vertices()],
            budget,
            &config,
        )
        .unwrap();
        let reference = reference_greedy(graph, vid(0), budget, &config, |g, s, b, c| {
            reference_decrease_nested(g, s, b, c)
        });
        assert_eq!(
            flat.blockers, reference,
            "graph {gi}: blocker selections diverged"
        );
    }
}

// ---------------------------------------------------------------------------
// Resident-pool determinism (PR 3): the pooled path must be byte-identical
// across worker-thread counts — a *stronger* contract than the classic
// estimator, whose per-thread RNG streams make its output depend on the
// thread count. Sample realisations are fixed per index, and subtree
// credits accumulate in integers, so any sharding yields the same answer.
// ---------------------------------------------------------------------------

/// The pool's stored realisations must match the nested-vector reference
/// sampler of the diffusion crate draw for draw: same indexed seed, same
/// coin order, same live edges.
#[test]
fn pool_realisations_match_the_indexed_live_edge_sampler() {
    let graph = ProbabilityModel::WeightedCascade
        .apply(&generators::preferential_attachment(180, 3, false, 1.0, 31).unwrap())
        .unwrap();
    let pool = SamplePool::build_with_threads(&graph, 12, 555, 4).unwrap();
    for i in 0..12 {
        let nested = sample_live_edges_indexed(&graph, 555, i as u64);
        let (offsets, targets) = pool.sample_csr(i);
        for u in 0..graph.num_vertices() {
            let slice = &targets[offsets[u] as usize..offsets[u + 1] as usize];
            assert_eq!(slice, nested[u].as_slice(), "sample {i}, vertex {u}");
        }
    }
}

/// Same `(graph, θ, pool_seed, query)` ⇒ byte-identical blocker sets at 1,
/// 2 and 8 worker threads, all equal to the sequential seed-path — for both
/// pool-backed algorithms and for multi-seed queries.
#[test]
fn pooled_selections_are_byte_identical_across_thread_counts() {
    let graph = ProbabilityModel::WeightedCascade
        .apply(&generators::preferential_attachment(300, 3, true, 1.0, 13).unwrap())
        .unwrap();
    let n = graph.num_vertices();
    let forbidden = vec![false; n];
    let seed_sets: [&[VertexId]; 2] = [&[vid(0)], &[vid(2), vid(9)]];
    // The sequential seed-path: pool built and queried with one thread.
    let pool_seq = SamplePool::build_with_threads(&graph, 500, 99, 1).unwrap();
    for seeds in seed_sets {
        let ag_ref = advanced_greedy_with_pool(&pool_seq, seeds, &forbidden, 4, 1).unwrap();
        let gr_ref = greedy_replace_with_pool(&pool_seq, &graph, seeds, &forbidden, 3, 1).unwrap();
        for threads in [2usize, 8] {
            // Both the pool build *and* the query run at `threads`.
            let pool = SamplePool::build_with_threads(&graph, 500, 99, threads).unwrap();
            let ag = advanced_greedy_with_pool(&pool, seeds, &forbidden, 4, threads).unwrap();
            assert_eq!(
                ag.blockers, ag_ref.blockers,
                "AG seeds={seeds:?} threads={threads}"
            );
            assert_eq!(ag.estimated_spread, ag_ref.estimated_spread);
            let gr =
                greedy_replace_with_pool(&pool, &graph, seeds, &forbidden, 3, threads).unwrap();
            assert_eq!(
                gr.blockers, gr_ref.blockers,
                "GR seeds={seeds:?} threads={threads}"
            );
            assert_eq!(gr.estimated_spread, gr_ref.estimated_spread);
        }
    }
}

#[test]
fn advanced_greedy_selection_is_identical_to_naive_oracle() {
    // The oracle is cubic per sample, so toy sizes and a small θ — but the
    // comparison is exact: same samples, dominators from first principles.
    let graphs = [
        toy_hub(),
        ProbabilityModel::WeightedCascade
            .apply(&generators::erdos_renyi(30, 0.12, 1.0, 5).unwrap())
            .unwrap(),
    ];
    for (gi, graph) in graphs.iter().enumerate() {
        let config = parity_config(60);
        let budget = 3;
        let flat = advanced_greedy(
            graph,
            vid(0),
            &vec![false; graph.num_vertices()],
            budget,
            &config,
        )
        .unwrap();
        let reference = reference_greedy(graph, vid(0), budget, &config, |g, s, b, c| {
            reference_decrease_naive(g, s, b, c)
        });
        assert_eq!(
            flat.blockers, reference,
            "graph {gi}: flat path diverged from the naive-dominator oracle"
        );
    }
}
