//! Shared helpers for the cross-crate integration tests.
//!
//! The real test code lives in the sibling `*.rs` files declared as `[[test]]`
//! targets in `Cargo.toml`; this library only exists so the package has a
//! compilation unit and a place for helpers shared by those targets.

/// Asserts that two floating-point spreads agree within `tol`.
pub fn assert_close(a: f64, b: f64, tol: f64, context: &str) {
    assert!(
        (a - b).abs() <= tol,
        "{context}: {a} vs {b} differ by more than {tol}"
    );
}
